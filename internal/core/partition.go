package core

import (
	"sort"

	"repro/internal/table"
)

// This file implements prefix-coherent schedule partitioning: splitting one
// reordered schedule into shards that can run on independent engine replicas
// (data-parallel serving) with almost no prefix-cache loss.
//
// The key observation is structural: a GGR (or fixed-order) schedule is a
// sequence of top-level prefix-sharing groups — maximal runs of rows whose
// leading cell matches the previous row's. Rows in DIFFERENT groups share no
// leading cell, so the adjacent-row prefix hit across a group boundary is
// exactly zero (a prefix run dies on its first mismatched cell; see PHC).
// Cutting the schedule only at group boundaries therefore preserves every
// intra-shard prefix hit: each shard is itself a valid prefix-coherent
// schedule, and the only reuse forfeited is whatever the serving engine
// would have carried across the cut — which the schedule itself promised
// nothing about.

// GroupStarts returns the start indices of the schedule's top-level
// prefix-sharing groups, in ascending order and always beginning with 0 for
// a non-empty schedule. A new group starts at row r when row r's first cell
// (field and value) differs from row r-1's — the positions where the
// adjacent-row prefix hit is exactly zero, i.e. the free cut points.
func GroupStarts(s *Schedule) []int {
	if s == nil || len(s.Rows) == 0 {
		return nil
	}
	starts := []int{0}
	for r := 1; r < len(s.Rows); r++ {
		prev, cur := s.Rows[r-1].Cells, s.Rows[r].Cells
		if len(prev) == 0 || len(cur) == 0 || prev[0] != cur[0] {
			starts = append(starts, r)
		}
	}
	return starts
}

// PackGroups assigns item weights to at most bins bins with the
// longest-processing-time greedy: items sorted by descending weight, each
// placed on the currently lightest bin (ties: lower index). It returns the
// item indices of each bin, every bin non-empty, indices ascending within a
// bin. The greedy guarantees max bin weight <= total/bins + max item weight.
// Shared by schedule partitioning here and request partitioning in
// internal/backend's Sharded decorator.
func PackGroups(weights []int64, bins int) [][]int {
	n := len(weights)
	if n == 0 || bins < 1 {
		return nil
	}
	if bins > n {
		bins = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })

	loads := make([]int64, bins)
	out := make([][]int, bins)
	for _, item := range order {
		best := 0
		for b := 1; b < bins; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		loads[best] += weights[item]
		out[best] = append(out[best], item)
	}
	for _, bin := range out {
		sort.Ints(bin)
	}
	return out
}

// PartitionStats reports how a schedule was split.
type PartitionStats struct {
	// Groups is the number of top-level prefix-sharing groups found.
	Groups int
	// Shards is the number of shards produced (<= the requested n, and
	// <= Groups — a group is never split).
	Shards int
	// ShardTokens is each shard's data-token weight (sum of cell lengths
	// under the partitioning LenFunc), the quantity the greedy balances.
	ShardTokens []int64
	// LostHitTokens estimates the linear prefix-hit tokens the cuts forfeit:
	// the schedule's adjacent-row hit tokens minus the sum over shards. With
	// cuts only at group boundaries this is <= 0 (never a loss; re-adjacent
	// groups can only add coincidental hits), which is the prefix-coherence
	// argument in numbers.
	LostHitTokens int64
}

// PartitionSchedule splits s into at most n prefix-coherent shards for
// data-parallel execution. Cuts land only on top-level group boundaries
// (GroupStarts), so no prefix-sharing run is ever divided; groups are
// balanced across shards by data-token weight with the PackGroups greedy and
// keep their original relative order within each shard. n <= 1, a nil or
// empty schedule, or a single group returns the schedule unsplit. lenOf nil
// defaults to table.CharLen.
func PartitionSchedule(s *Schedule, n int, lenOf table.LenFunc) []*Schedule {
	shards, _ := PartitionScheduleStats(s, n, lenOf)
	return shards
}

// PartitionScheduleStats is PartitionSchedule reporting the cut accounting.
func PartitionScheduleStats(s *Schedule, n int, lenOf table.LenFunc) ([]*Schedule, PartitionStats) {
	if s == nil || len(s.Rows) == 0 {
		return nil, PartitionStats{}
	}
	if lenOf == nil {
		lenOf = table.CharLen
	}
	starts := GroupStarts(s)
	stats := PartitionStats{Groups: len(starts)}
	if n <= 1 || len(starts) <= 1 {
		stats.Shards = 1
		stats.ShardTokens = []int64{scheduleTokens(s.Rows, lenOf)}
		return []*Schedule{s}, stats
	}

	weights := make([]int64, len(starts))
	for g, start := range starts {
		end := len(s.Rows)
		if g+1 < len(starts) {
			end = starts[g+1]
		}
		weights[g] = scheduleTokens(s.Rows[start:end], lenOf)
	}
	bins := PackGroups(weights, n)

	shards := make([]*Schedule, len(bins))
	stats.Shards = len(bins)
	stats.ShardTokens = make([]int64, len(bins))
	var shardHits int64
	for b, groups := range bins {
		var rows []Row
		for _, g := range groups {
			end := len(s.Rows)
			if g+1 < len(starts) {
				end = starts[g+1]
			}
			rows = append(rows, s.Rows[starts[g]:end]...)
			stats.ShardTokens[b] += weights[g]
		}
		shards[b] = &Schedule{Rows: rows}
		shardHits += Hits(shards[b], lenOf).Matched
	}
	stats.LostHitTokens = Hits(s, lenOf).Matched - shardHits
	return shards, stats
}

// scheduleTokens sums cell lengths over rows, plus one per cell for the
// field-name and separator overhead a serialized request carries.
func scheduleTokens(rows []Row, lenOf table.LenFunc) int64 {
	var total int64
	for _, r := range rows {
		for _, c := range r.Cells {
			total += int64(lenOf(c.Value)) + 1
		}
	}
	return total
}
