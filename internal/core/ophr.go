package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/table"
)

// ErrBudget is returned by OPHR when the node budget is exhausted before the
// search completes. The paper handles the same blow-up with a two-hour
// wall-clock timeout (Appendix D.1); a deterministic node budget makes the
// reproduction hermetic.
var ErrBudget = errors.New("core: OPHR node budget exhausted")

// OPHROptions configures the exact solver.
type OPHROptions struct {
	// LenOf measures cell values; defaults to table.CharLen.
	LenOf table.LenFunc
	// MaxNodes bounds the number of recursion nodes expanded (0 means the
	// default of 5 million). OPHR is exponential; the budget turns a hang
	// into an explicit error.
	MaxNodes int64
}

// OPHR runs Optimal Prefix Hit Recursion (Sec. 4.1) and returns the optimal
// schedule. It considers, at every recursion step, all (field, distinct
// value) splits of the sub-table and maximizes the sum of the group's
// contribution and the optimal PHC of both sub-tables. Sub-problems are
// memoized on their (row set, column set) identity.
func OPHR(t *table.Table, opt OPHROptions) (*Result, error) {
	if opt.LenOf == nil {
		opt.LenOf = table.CharLen
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 5_000_000
	}
	s := &ophrSolver{
		t:    t,
		opt:  opt,
		lens: newLens(opt.LenOf),
		memo: make(map[string]ophrEntry),
	}
	est, rows, err := s.rec(fullView(t))
	if err != nil {
		return nil, err
	}
	sched := &Schedule{Rows: rows}
	return &Result{Schedule: sched, Estimate: est, PHC: PHC(sched, s.lens.fn())}, nil
}

type ophrEntry struct {
	s    int64
	rows []Row
}

type ophrSolver struct {
	t     *table.Table
	opt   OPHROptions
	lens  *lens
	memo  map[string]ophrEntry
	nodes int64
}

// key canonically encodes a view's row and column sets. Views always keep
// base indices in ascending order (splits preserve order), so no sorting is
// needed.
func (o *ophrSolver) key(v view) string {
	buf := make([]byte, 0, 4*(len(v.rows)+len(v.cols))+2)
	var tmp [binary.MaxVarintLen32]byte
	for _, r := range v.rows {
		n := binary.PutUvarint(tmp[:], uint64(r))
		buf = append(buf, tmp[:n]...)
	}
	buf = append(buf, 0xFF, 0xFE)
	for _, c := range v.cols {
		n := binary.PutUvarint(tmp[:], uint64(c))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

func (o *ophrSolver) rec(v view) (int64, []Row, error) {
	o.nodes++
	if o.nodes > o.opt.MaxNodes {
		return 0, nil, fmt.Errorf("%w (budget %d)", ErrBudget, o.opt.MaxNodes)
	}
	switch {
	case len(v.rows) == 0:
		return 0, nil, nil
	case len(v.cols) == 0:
		out := make([]Row, len(v.rows))
		for i, src := range v.rows {
			out[i] = Row{Source: src}
		}
		return 0, out, nil
	case len(v.rows) == 1:
		return 0, emitFixed(v, identityPositions(len(v.cols))), nil
	case len(v.cols) == 1:
		s, rows := o.singleColumn(v)
		return s, rows, nil
	}
	k := o.key(v)
	if e, ok := o.memo[k]; ok {
		return e.s, e.rows, nil
	}

	bestS := int64(-1)
	var bestRows []Row
	for ci := range v.cols {
		baseCol := v.cols[ci]
		// Distinct values of this column in first-appearance order.
		seen := make(map[string][]int)
		var order []string
		for _, r := range v.rows {
			val := o.t.Cell(r, baseCol)
			if _, ok := seen[val]; !ok {
				order = append(order, val)
			}
			seen[val] = append(seen[val], r)
		}
		if len(order) == len(v.rows) && len(order) > 1 {
			// Every value distinct: any split contributes 0 and both
			// sub-problems are strictly smaller versions of the same search.
			// Splitting on the first value alone is sufficient to preserve
			// optimality while pruning |rows| symmetric candidates.
			order = order[:1]
		}
		for _, val := range order {
			group := seen[val]
			var rest []int
			if len(group) < len(v.rows) {
				rest = make([]int, 0, len(v.rows)-len(group))
				for _, r := range v.rows {
					if o.t.Cell(r, baseCol) != val {
						rest = append(rest, r)
					}
				}
			}
			groupCols := make([]int, 0, len(v.cols)-1)
			for _, c := range v.cols {
				if c != baseCol {
					groupCols = append(groupCols, c)
				}
			}
			contrib := o.lens.sq(val) * int64(len(group)-1)

			restS, restRows, err := o.rec(view{t: o.t, rows: rest, cols: v.cols})
			if err != nil {
				return 0, nil, err
			}
			grpS, grpRows, err := o.rec(view{t: o.t, rows: group, cols: groupCols})
			if err != nil {
				return 0, nil, err
			}
			total := restS + grpS + contrib
			if total > bestS {
				colName := o.t.Columns()[baseCol]
				out := make([]Row, 0, len(v.rows))
				for _, r := range grpRows {
					cells := make([]Cell, 0, 1+len(r.Cells))
					cells = append(cells, Cell{Field: colName, Value: val})
					cells = append(cells, r.Cells...)
					out = append(out, Row{Source: r.Source, Cells: cells})
				}
				out = append(out, restRows...)
				bestS, bestRows = total, out
			}
		}
	}
	o.memo[k] = ophrEntry{s: bestS, rows: bestRows}
	return bestS, bestRows, nil
}

// singleColumn mirrors the GGR base case: identical values grouped by
// sorting, PHC = Σ len(v)² × (count−1).
func (o *ophrSolver) singleColumn(v view) (int64, []Row) {
	rows := append([]int(nil), v.rows...)
	sortRowsByCols(o.t, rows, []int{v.cols[0]})
	var s int64
	counts := make(map[string]int64)
	for _, r := range rows {
		counts[o.t.Cell(r, v.cols[0])]++
	}
	for val, c := range counts {
		s += o.lens.sq(val) * (c - 1)
	}
	return s, emitFixed(view{t: o.t, rows: rows, cols: v.cols}, []int{0})
}
