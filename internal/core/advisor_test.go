package core

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

func TestAdviseRecommendsOnScatteredRepetition(t *testing.T) {
	// Entity descriptions repeated but scattered: classic reorder win.
	tb := table.New("unique", "entity")
	for i := 0; i < 40; i++ {
		tb.MustAppendRow(
			fmt.Sprintf("unique-value-%02d", i),
			fmt.Sprintf("shared-entity-description-%d", i%3),
		)
	}
	adv := Advise(tb, table.CharLen, 0)
	if !adv.Reorder {
		t.Fatalf("advisor declined an obvious win: %+v", adv)
	}
	if adv.RepeatedTokenShare < 0.3 {
		t.Errorf("repeated share = %.2f", adv.RepeatedTokenShare)
	}
	if adv.ExpectedGain <= 0.05 {
		t.Errorf("expected gain = %.2f", adv.ExpectedGain)
	}
}

func TestAdviseDeclinesUniqueTable(t *testing.T) {
	tb := table.New("a", "b")
	for i := 0; i < 30; i++ {
		tb.MustAppendRow(fmt.Sprintf("aa-%d", i*7), fmt.Sprintf("bb-%d", i*13))
	}
	adv := Advise(tb, table.CharLen, 0)
	if adv.Reorder {
		t.Fatalf("advisor recommended reordering an all-unique table: %+v", adv)
	}
	if adv.RepeatedTokenShare > 0.05 {
		t.Errorf("repeated share = %.2f on unique data", adv.RepeatedTokenShare)
	}
}

func TestAdviseDeclinesAlreadyGrouped(t *testing.T) {
	// Same repetition as the win case but pre-sorted: the original layout
	// already captures it, so the solver adds nothing.
	tb := table.New("entity", "unique")
	for g := 0; g < 3; g++ {
		for i := 0; i < 12; i++ {
			tb.MustAppendRow(
				fmt.Sprintf("shared-entity-description-%d", g),
				fmt.Sprintf("unique-value-%d-%d", g, i),
			)
		}
	}
	adv := Advise(tb, table.CharLen, 0)
	if adv.Reorder {
		t.Fatalf("advisor recommended reordering a pre-grouped table: %+v", adv)
	}
	if adv.RepeatedTokenShare < 0.3 {
		t.Errorf("repeated share = %.2f", adv.RepeatedTokenShare)
	}
}

func TestAdviseDegenerateInputs(t *testing.T) {
	empty := table.New("a")
	if adv := Advise(empty, table.CharLen, 0); adv.Reorder {
		t.Error("empty table recommended")
	}
	one := table.New("a")
	one.MustAppendRow("x")
	if adv := Advise(one, table.CharLen, 0); adv.Reorder {
		t.Error("single row recommended")
	}
	blank := table.New("a")
	blank.MustAppendRow("")
	blank.MustAppendRow("")
	if adv := Advise(blank, table.CharLen, 0); adv.Reorder {
		t.Error("all-empty cells recommended")
	}
	if adv := Advise(blank, nil, 0); adv.Reorder {
		t.Error("nil LenFunc mishandled")
	}
}

func TestAdviseSampling(t *testing.T) {
	tb := table.New("unique", "entity")
	for i := 0; i < 500; i++ {
		tb.MustAppendRow(
			fmt.Sprintf("unique-%04d", i),
			fmt.Sprintf("entity-group-value-%d", i%4),
		)
	}
	full := Advise(tb, table.CharLen, 0)
	sampled := Advise(tb, table.CharLen, 100)
	if full.Reorder != sampled.Reorder {
		t.Errorf("sampling flipped the verdict: full %+v vs sampled %+v", full, sampled)
	}
	if d := full.RepeatedTokenShare - sampled.RepeatedTokenShare; d > 0.1 || d < -0.1 {
		t.Errorf("sampled share drifted: %.2f vs %.2f", sampled.RepeatedTokenShare, full.RepeatedTokenShare)
	}
}

func TestAdviseAgreesWithSolverOnBenchmarkShape(t *testing.T) {
	// On an entity table where the advisor says yes, GGR must deliver at
	// least the predicted share of the promised gain.
	tb := table.New("payload", "entity")
	for i := 0; i < 60; i++ {
		tb.MustAppendRow(
			fmt.Sprintf("row-payload-%02d-%d", i, i*31),
			fmt.Sprintf("a-long-shared-entity-block-%d", i%5),
		)
	}
	adv := Advise(tb, table.CharLen, 0)
	if !adv.Reorder {
		t.Fatalf("advisor declined: %+v", adv)
	}
	res := GGR(tb, GGROptions{LenOf: table.CharLen})
	achieved := Hits(res.Schedule, table.CharLen).Rate()
	if achieved < adv.ExpectedGain/2 {
		t.Errorf("solver delivered %.2f, advisor promised %.2f", achieved, adv.ExpectedGain)
	}
}
