package core

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func benchTable(rows, entities int) *table.Table {
	r := rand.New(rand.NewSource(17))
	return entityTable(r, rows, entities)
}

func BenchmarkGGRDefault(b *testing.B) {
	tb := benchTable(2000, 100)
	opt := DefaultGGROptions(table.CharLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GGR(tb, opt)
	}
}

func BenchmarkGGRExhaustive(b *testing.B) {
	tb := benchTable(300, 30)
	opt := ExhaustiveGGROptions(table.CharLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GGR(tb, opt)
	}
}

func BenchmarkGGRWindowed(b *testing.B) {
	tb := benchTable(2000, 100)
	opt := DefaultGGROptions(table.CharLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GGRWindowed(tb, opt, 256)
	}
}

func BenchmarkOPHRSmall(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	tb := randomTable(r, 8, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OPHR(tb, OPHROptions{LenOf: table.CharLen}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPHC(b *testing.B) {
	tb := benchTable(2000, 100)
	s := Original(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PHC(s, table.CharLen)
	}
}

func BenchmarkVerify(b *testing.B) {
	tb := benchTable(2000, 100)
	s := GGR(tb, DefaultGGROptions(table.CharLen)).Schedule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(tb, s); err != nil {
			b.Fatal(err)
		}
	}
}
