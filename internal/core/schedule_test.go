package core

import (
	"testing"

	"repro/internal/table"
)

// tinyTable builds:
//
//	id  group  note
//	1   g      n1
//	2   g      n2
//	3   h      n1
func tinyTable() *table.Table {
	t := table.New("id", "group", "note")
	t.MustAppendRow("1", "g", "n1")
	t.MustAppendRow("2", "g", "n2")
	t.MustAppendRow("3", "h", "n1")
	return t
}

func TestPHCEmptyAndSingle(t *testing.T) {
	if got := PHC(&Schedule{}, table.CharLen); got != 0 {
		t.Errorf("empty schedule PHC = %d", got)
	}
	s := Original(tinyTable().Head(1))
	if got := PHC(s, table.CharLen); got != 0 {
		t.Errorf("single-row PHC = %d", got)
	}
}

func TestPHCHandComputed(t *testing.T) {
	// Rows: (g, n1), (g, n2): first cell matches (len 1 -> 1), second differs.
	s := &Schedule{Rows: []Row{
		{Source: 0, Cells: []Cell{{"group", "g"}, {"note", "n1"}}},
		{Source: 1, Cells: []Cell{{"group", "g"}, {"note", "n2"}}},
		{Source: 2, Cells: []Cell{{"group", "g"}, {"note", "n2"}}},
	}}
	// Row1 vs Row0: "g" matches -> 1². Row2 vs Row1: both match -> 1² + 2².
	if got := PHC(s, table.CharLen); got != 1+1+4 {
		t.Errorf("PHC = %d, want 6", got)
	}
}

func TestPHCStopsAtFirstMismatch(t *testing.T) {
	// A later match after a mismatch must not count (prefix semantics).
	s := &Schedule{Rows: []Row{
		{Cells: []Cell{{"a", "x"}, {"b", "DIFF1"}, {"c", "same"}}},
		{Cells: []Cell{{"a", "x"}, {"b", "DIFF2"}, {"c", "same"}}},
	}}
	if got := PHC(s, table.CharLen); got != 1 {
		t.Errorf("PHC = %d, want 1 (only leading x)", got)
	}
}

func TestPHCFieldNameMatters(t *testing.T) {
	// Same value under different field names is not a prefix hit: the JSON
	// serialization includes the key.
	s := &Schedule{Rows: []Row{
		{Cells: []Cell{{"a", "val"}}},
		{Cells: []Cell{{"b", "val"}}},
	}}
	if got := PHC(s, table.CharLen); got != 0 {
		t.Errorf("cross-field match counted: PHC = %d", got)
	}
}

func TestPHCSquaresLengths(t *testing.T) {
	s := &Schedule{Rows: []Row{
		{Cells: []Cell{{"a", "12345"}}},
		{Cells: []Cell{{"a", "12345"}}},
	}}
	if got := PHC(s, table.CharLen); got != 25 {
		t.Errorf("PHC = %d, want 25", got)
	}
	if got := PHC(s, table.UnitLen); got != 1 {
		t.Errorf("unit PHC = %d, want 1", got)
	}
}

func TestHitsRate(t *testing.T) {
	s := &Schedule{Rows: []Row{
		{Cells: []Cell{{"a", "xx"}, {"b", "yy"}}},
		{Cells: []Cell{{"a", "xx"}, {"b", "zz"}}},
	}}
	h := Hits(s, table.CharLen)
	if h.Total != 8 {
		t.Errorf("total = %d, want 8", h.Total)
	}
	if h.Matched != 2 {
		t.Errorf("matched = %d, want 2", h.Matched)
	}
	if r := h.Rate(); r != 0.25 {
		t.Errorf("rate = %v, want 0.25", r)
	}
	if (HitStats{}).Rate() != 0 {
		t.Error("empty rate should be 0")
	}
}

func TestOriginalSchedule(t *testing.T) {
	tb := tinyTable()
	s := Original(tb)
	if err := Verify(tb, s); err != nil {
		t.Fatalf("original schedule fails verify: %v", err)
	}
	if s.Rows[0].Cells[0] != (Cell{"id", "1"}) {
		t.Errorf("row 0 cell 0 = %+v", s.Rows[0].Cells[0])
	}
	if s.Rows[2].Cells[2] != (Cell{"note", "n1"}) {
		t.Errorf("row 2 cell 2 = %+v", s.Rows[2].Cells[2])
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	tb := tinyTable()

	dup := Original(tb)
	dup.Rows[1].Source = 0
	if err := Verify(tb, dup); err == nil {
		t.Error("duplicate source accepted")
	}

	missingCell := Original(tb)
	missingCell.Rows[0].Cells = missingCell.Rows[0].Cells[:2]
	if err := Verify(tb, missingCell); err == nil {
		t.Error("dropped cell accepted")
	}

	wrongValue := Original(tb)
	wrongValue.Rows[0].Cells[1].Value = "tampered"
	if err := Verify(tb, wrongValue); err == nil {
		t.Error("tampered value accepted")
	}

	wrongField := Original(tb)
	wrongField.Rows[0].Cells[1].Field = "nope"
	if err := Verify(tb, wrongField); err == nil {
		t.Error("unknown field accepted")
	}

	repeated := Original(tb)
	repeated.Rows[0].Cells[1] = repeated.Rows[0].Cells[0]
	if err := Verify(tb, repeated); err == nil {
		t.Error("repeated field accepted")
	}

	short := Original(tb)
	short.Rows = short.Rows[:2]
	if err := Verify(tb, short); err == nil {
		t.Error("dropped row accepted")
	}

	oob := Original(tb)
	oob.Rows[0].Source = 99
	if err := Verify(tb, oob); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestVerifyAcceptsPermutation(t *testing.T) {
	tb := tinyTable()
	s := Original(tb)
	// Reverse rows and reverse each row's field order: still a valid schedule.
	for i, j := 0, len(s.Rows)-1; i < j; i, j = i+1, j-1 {
		s.Rows[i], s.Rows[j] = s.Rows[j], s.Rows[i]
	}
	for _, r := range s.Rows {
		for i, j := 0, len(r.Cells)-1; i < j; i, j = i+1, j-1 {
			r.Cells[i], r.Cells[j] = r.Cells[j], r.Cells[i]
		}
	}
	if err := Verify(tb, s); err != nil {
		t.Errorf("permuted schedule rejected: %v", err)
	}
}

func TestFixedOrder(t *testing.T) {
	tb := tinyTable()
	s, err := FixedOrder(tb, []string{"group", "note", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, s); err != nil {
		t.Fatalf("fixed order fails verify: %v", err)
	}
	// Rows sorted lexicographically by (group, note, id): g/n1, g/n2, h/n1.
	if s.Rows[0].Source != 0 || s.Rows[1].Source != 1 || s.Rows[2].Source != 2 {
		t.Errorf("row order = %d,%d,%d", s.Rows[0].Source, s.Rows[1].Source, s.Rows[2].Source)
	}
	if s.Rows[0].Cells[0].Field != "group" {
		t.Errorf("field order wrong: %+v", s.Rows[0].Cells)
	}

	if _, err := FixedOrder(tb, []string{"group"}); err == nil {
		t.Error("short column list accepted")
	}
	if _, err := FixedOrder(tb, []string{"group", "note", "zzz"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestBestFixedPutsRepeatedColumnFirst(t *testing.T) {
	tb := table.New("unique", "shared")
	tb.MustAppendRow("u1", "common-value")
	tb.MustAppendRow("u2", "common-value")
	tb.MustAppendRow("u3", "common-value")
	s := BestFixed(tb, table.CharLen)
	if err := Verify(tb, s); err != nil {
		t.Fatal(err)
	}
	if s.Rows[0].Cells[0].Field != "shared" {
		t.Errorf("BestFixed first field = %q, want shared", s.Rows[0].Cells[0].Field)
	}
	// All three rows share "common-value" (len 12): PHC = 2 × 12².
	if got := PHC(s, table.CharLen); got != 2*144 {
		t.Errorf("BestFixed PHC = %d, want 288", got)
	}
}
