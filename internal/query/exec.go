package query

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/llmsim"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// Policy selects the scheduling baseline (Sec. 6.1.3).
type Policy string

const (
	// NoCache disables the prefix cache entirely.
	NoCache Policy = "no-cache"
	// CacheOriginal enables the cache but keeps the table's original row and
	// field order.
	CacheOriginal Policy = "cache-original"
	// CacheGGR enables the cache and reorders with Greedy Group Recursion.
	CacheGGR Policy = "cache-ggr"
	// CacheBestFixed enables the cache with the best single fixed field
	// order (the Sec. 3.2 strawman; used in ablations).
	CacheBestFixed Policy = "cache-bestfixed"
)

// Policies lists the paper's three main baselines in presentation order.
var Policies = []Policy{NoCache, CacheOriginal, CacheGGR}

// Config parameterizes query execution.
type Config struct {
	Policy  Policy
	Model   llmsim.ModelConfig
	Cluster llmsim.Cluster
	// Oracle decides answer content; zero value defaults to Llama8B.
	Oracle oracle.Profile
	// GGR overrides the solver options (nil = paper defaults over token
	// lengths: row depth 4, col depth 2, 0.1M threshold, FDs on).
	GGR *core.GGROptions
	// MaxBatchSeqs/MaxBatchTokens override engine limits when positive.
	MaxBatchSeqs   int
	MaxBatchTokens int
	// KVPoolBlocks overrides the cost-model-derived KV pool size when
	// positive. Scaled-down benchmark runs shrink the pool proportionally so
	// eviction pressure — which drives the Cache(Original) hit rates at full
	// scale — is preserved.
	KVPoolBlocks int64
	// Backend is the serving target every stage's scheduled batch runs on.
	// Nil uses backend.Default (a fresh confined engine per batch — the
	// paper's setting and the historical behavior). Backends only change
	// serving cost, never results: answers are content-keyed outside the
	// engine. The backend is deliberately NOT part of StageKey — a config
	// is expected to keep one backend for its lifetime, and the key must
	// agree between the runtime's batch grouping and the backend's engine
	// affinity.
	Backend backend.Backend
	// ReorderCache, when non-nil, memoizes GGR solves by (StageKey,
	// table-content hash): a batch window identical to an earlier one reuses
	// its schedule instead of re-running the solver. Like Backend it changes
	// planning cost only, never results, and is excluded from StageKey.
	ReorderCache *ReorderCache
	// PromptCache, when non-nil, memoizes per-row prompt tokenization over
	// one long-lived tokenizer shared across stages and batch windows. Nil
	// keeps the historical throwaway-tokenizer-per-stage behavior.
	PromptCache *PromptCache
}

func (c Config) oracle() oracle.Profile {
	if c.Oracle.Name == "" {
		return oracle.Llama8B
	}
	return c.Oracle
}

// withDefaults fills the zero value with the paper's main setup:
// Llama-3-8B on a single L4, GGR policy.
func (c Config) withDefaults() Config {
	if c.Model.Name == "" {
		c.Model = llmsim.Llama3_8B
	}
	if c.Cluster.Count == 0 {
		c.Cluster = llmsim.SingleL4
	}
	if c.Policy == "" {
		c.Policy = CacheGGR
	}
	return c
}

// tokenLen is the LenFunc used for scheduling objectives: PHC in token units
// aligns the solver with what the KV cache stores.
func tokenLen(v string) int { return tokenizer.Count(v) }

// StageResult reports one LLM invocation stage.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type StageResult struct {
	Spec Spec
	// Metrics is the serving engine's accounting (JCT, hit rate, ...).
	Metrics llmsim.Metrics
	// SolverSeconds is the wall-clock time spent computing the schedule.
	SolverSeconds float64
	// PHC is the exact prefix hit count of the schedule over the data cells.
	PHC int64
	// Outputs holds the model answer per source row of the stage's input
	// table.
	Outputs []string
	// Rows is the stage's input size.
	Rows int
	// ModelCalls is the number of rows actually sent to the serving engine.
	// RunStage sets it equal to Rows; the serving runtime reports fewer when
	// its result cache or inflight dedup served rows without a model call.
	ModelCalls int
}

// Result reports a complete benchmark query (one or two stages).
type Result struct {
	Stages []*StageResult
	// JCT is the end-to-end latency (sum over stages); SolverSeconds the
	// total scheduling time.
	JCT           float64
	SolverSeconds float64
	// HitRate is the prompt-token-weighted cache hit rate across stages.
	HitRate float64
	// Outputs are the final stage's answers indexed by its input rows.
	Outputs []string
	// Passing lists source rows that passed a filter (T1/T3 first stage).
	Passing []int
	// Average is the AVG over scores for aggregation queries.
	Average float64
}

// RunStage executes a single LLM invocation over tbl under the configured
// policy and returns engine metrics plus per-row model outputs. It is
// RunStageContext without cancellation.
func RunStage(spec Spec, tbl *table.Table, cfg Config) (*StageResult, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper; callers wanting cancellation use RunStageContext
	return RunStageContext(context.Background(), spec, tbl, cfg)
}

// RunStageContext executes a single LLM invocation over tbl under the
// configured policy: it computes the schedule, tokenizes the requests, and
// hands the finished batch to cfg.Backend (backend.Default when nil). ctx
// cancels the run — before scheduling and between engine steps — returning
// an error that wraps ctx.Err().
func RunStageContext(ctx context.Context, spec Spec, tbl *table.Table, cfg Config) (*StageResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tbl.NumRows() == 0 {
		return &StageResult{Spec: spec}, nil
	}
	stageKey := StageKey(spec, tbl.Columns(), cfg)
	sp := obs.FromContext(ctx)
	schedStart := time.Now()
	sched, phc, solver, err := buildSchedule(tbl, cfg, stageKey)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		ss := sp.ChildAt("schedule", schedStart, time.Since(schedStart))
		ss.Set("policy", string(cfg.Policy))
		ss.Set("solverSeconds", solver.Seconds())
		ss.Set("phc", phc)
	}
	if err := core.Verify(tbl, sched); err != nil {
		return nil, fmt.Errorf("query: schedule for %s broke semantics: %w", spec.Name, err)
	}

	// Tokenize through the shared memo when one is attached; otherwise a
	// throwaway tokenizer confined to this stage, the historical behavior.
	encode := cfg.PromptCache.encoder()
	prefix := encode(PromptPrefix(spec.UserPrompt))
	reqs := make([]*llmsim.Request, len(sched.Rows))
	for i, row := range sched.Rows {
		data := encode(RowJSON(row.Cells))
		prompt := make([]tokenizer.Token, 0, len(prefix)+len(data))
		prompt = append(prompt, prefix...)
		prompt = append(prompt, data...)
		reqs[i] = &llmsim.Request{
			ID:        row.Source,
			Prompt:    prompt,
			OutTokens: spec.OutTokensFor(row.Source),
		}
	}

	be := cfg.Backend
	if be == nil {
		be = backend.Default
	}
	// The backend span rides the batch's context so the backend itself
	// (sharded fan-out, persistent pool) can annotate its dispatch; it carries
	// the engine run's accounting as attributes but never charges — charging
	// happens once, in the serving runtime, where the statement is charged.
	bsp := sp.Child("backend")
	br, err := be.RunBatch(obs.With(ctx, bsp), backend.BatchSpec{
		StageKey: stageKey,
		Requests: reqs,
		Groups:   core.GroupStarts(sched),
		Engine:   engineConfig(cfg),
	})
	bsp.End()
	if err != nil {
		bsp.Set("error", err.Error())
		return nil, fmt.Errorf("query: engine run for %s: %w", spec.Name, err)
	}
	bsp.Set("modelCalls", br.ModelCalls)
	bsp.Set("jctSeconds", br.Metrics.JCT)
	bsp.Set("promptTokens", br.Metrics.PromptTokens)
	bsp.Set("matchedTokens", br.Metrics.MatchedTokens)

	outputs := make([]string, tbl.NumRows())
	prof := cfg.oracle()
	for _, row := range sched.Rows {
		outputs[row.Source] = answerFor(spec, tbl, prof, row)
	}
	return &StageResult{
		Spec:          spec,
		Metrics:       br.Metrics,
		SolverSeconds: solver.Seconds(),
		PHC:           phc,
		Outputs:       outputs,
		Rows:          tbl.NumRows(),
		ModelCalls:    br.ModelCalls,
	}, nil
}

// engineConfig renders the execution config's engine sizing for a backend.
func engineConfig(cfg Config) llmsim.Config {
	return llmsim.Config{
		Cost:             llmsim.CostModel{Model: cfg.Model, Cluster: cfg.Cluster},
		CacheEnabled:     cfg.Policy != NoCache,
		MaxBatchSeqs:     cfg.MaxBatchSeqs,
		MaxBatchTokens:   cfg.MaxBatchTokens,
		CapacityOverride: cfg.KVPoolBlocks,
	}
}

// StageKey fingerprints a batchable stage shape: two stages with equal keys
// ask the same question over the same schema under the same serving
// configuration, so their rows may share one engine run, their
// (content-keyed) answers may share cache entries, and a persistent backend
// may serve both from one long-lived KV cache. Every component is
// length-prefixed, making the encoding injective. The serving runtime
// groups cross-query batches by this key and persistent backends key engine
// affinity on it; both must agree, which is why the key lives here.
func StageKey(spec Spec, cols []string, cfg Config) string {
	cfg = cfg.withDefaults()
	var sb strings.Builder
	part := func(s string) {
		fmt.Fprintf(&sb, "%d:%s;", len(s), s)
	}
	part(spec.Dataset)
	part(string(spec.Type))
	part(spec.UserPrompt)
	part(spec.KeyField)
	part(spec.TruthHidden)
	fmt.Fprintf(&sb, "%d;", len(spec.Choices))
	for _, c := range spec.Choices {
		part(c)
	}
	fmt.Fprintf(&sb, "%d;", len(cols))
	for _, c := range cols {
		part(c)
	}
	// The serving config changes engine timing and (via the policy's field
	// ordering) the oracle's position term, so it is part of the identity.
	// GGR options are compared by pointer: distinct custom solvers never
	// share a batch. Profile maps print with sorted keys, so the rendering
	// is deterministic. The backend itself is excluded — the key selects
	// WHICH engine state a batch may share, not WHERE it runs.
	part(fmt.Sprintf("%s|%+v|%+v|%+v|%d|%d|%d|%p",
		cfg.Policy, cfg.Model, cfg.Cluster, cfg.Oracle,
		cfg.MaxBatchSeqs, cfg.MaxBatchTokens, cfg.KVPoolBlocks, cfg.GGR))
	return sb.String()
}

// OracleAnswers returns the model outputs for every row of a schedule,
// indexed by source row, without running the serving engine. The accuracy
// experiments (Fig. 6) use this to compare orderings cheaply.
func OracleAnswers(spec Spec, tbl *table.Table, sched *core.Schedule, prof oracle.Profile) []string {
	out := make([]string, tbl.NumRows())
	for _, row := range sched.Rows {
		out[row.Source] = answerFor(spec, tbl, prof, row)
	}
	return out
}

// answerFor consults the oracle for one scheduled row's output.
func answerFor(spec Spec, tbl *table.Table, prof oracle.Profile, row core.Row) string {
	relPos := KeyFieldRelPos(row.Cells, spec.KeyField)
	key := uint64(row.Source)
	if spec.RowKeys != nil {
		key = spec.RowKeys(row.Source)
	}
	switch {
	case spec.Type == Aggregation:
		truth, err := strconv.Atoi(tbl.HiddenValue(spec.TruthHidden, row.Source))
		if err != nil {
			truth = 3
		}
		return strconv.Itoa(prof.Score(spec.Dataset, key, truth, 5, relPos))
	case len(spec.Choices) > 0:
		truth := tbl.HiddenValue(spec.TruthHidden, row.Source)
		return prof.Answer(spec.Dataset, key, truth, spec.Choices, relPos)
	default:
		return oracle.FreeText(key, spec.OutTokensFor(row.Source))
	}
}

// KeyFieldRelPos locates a field's relative position within a row's cell
// order: 0 for the first field, 1 for the last, 0.5 when absent or the row
// has a single field.
func KeyFieldRelPos(cells []core.Cell, field string) float64 {
	if len(cells) < 2 {
		return 0.5
	}
	for i, c := range cells {
		if c.Field == field {
			return float64(i) / float64(len(cells)-1)
		}
	}
	return 0.5
}

// buildSchedule computes the request ordering for the policy, timing the
// solver. GGR solves consult cfg.ReorderCache (keyed by stageKey plus the
// table's content hash) when one is attached, so a batch window identical to
// an earlier one skips the solve entirely.
func buildSchedule(tbl *table.Table, cfg Config, stageKey string) (*core.Schedule, int64, time.Duration, error) {
	start := time.Now()
	var sched *core.Schedule
	switch cfg.Policy {
	case NoCache, CacheOriginal:
		sched = core.Original(tbl)
	case CacheBestFixed:
		sched = core.BestFixed(tbl, tokenLen)
	case CacheGGR, "":
		opt := core.DefaultGGROptions(tokenLen)
		if cfg.GGR != nil {
			opt = *cfg.GGR
		}
		if cfg.ReorderCache == nil {
			res := core.GGR(tbl, opt)
			return res.Schedule, res.PHC, time.Since(start), nil
		}
		key := reorderKeyFor(stageKey, tbl)
		if cached, phc, ok := cfg.ReorderCache.lookup(key); ok {
			return cached, phc, time.Since(start), nil
		}
		res := core.GGR(tbl, opt)
		cfg.ReorderCache.store(key, res.Schedule, res.PHC)
		return res.Schedule, res.PHC, time.Since(start), nil
	default:
		return nil, 0, 0, fmt.Errorf("query: unknown policy %q", cfg.Policy)
	}
	elapsed := time.Since(start)
	return sched, core.PHC(sched, tokenLen), elapsed, nil
}

// Run executes a complete benchmark query over its input table. For
// MultiLLM queries tbl feeds the first (filter) stage and the second stage
// runs over the passing rows; for all other types the query is one stage.
// RAG queries expect the joined (question, contexts) table — see RunRAG.
func Run(spec Spec, tbl *table.Table, cfg Config) (*Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over RunContext
	return RunContext(context.Background(), spec, tbl, cfg)
}

// RunContext is Run honoring ctx: cancellation is checked before every
// stage and between engine steps within one.
func RunContext(ctx context.Context, spec Spec, tbl *table.Table, cfg Config) (*Result, error) {
	first, err := RunStageContext(ctx, spec, tbl, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Stages: []*StageResult{first}}

	switch spec.Type {
	case Filter, MultiLLM:
		pass := spec.FilterPass
		if pass == "" && len(spec.Choices) > 0 {
			pass = spec.Choices[0]
		}
		for i, out := range first.Outputs {
			if out == pass {
				res.Passing = append(res.Passing, i)
			}
		}
	case Aggregation:
		var sum, n float64
		for _, out := range first.Outputs {
			if v, err := strconv.ParseFloat(out, 64); err == nil {
				sum += v
				n++
			}
		}
		if n > 0 {
			res.Average = sum / n
		}
	}

	if spec.Type == MultiLLM {
		second, err := ByName(spec.Second)
		if err != nil {
			return nil, err
		}
		sub := tbl.FilterRows(res.Passing)
		sr, err := RunStageContext(ctx, second, sub, cfg)
		if err != nil {
			return nil, err
		}
		res.Stages = append(res.Stages, sr)
	}

	last := res.Stages[len(res.Stages)-1]
	res.Outputs = last.Outputs
	var prompt, matched int64
	for _, st := range res.Stages {
		res.JCT += st.Metrics.JCT
		res.SolverSeconds += st.SolverSeconds
		prompt += st.Metrics.PromptTokens
		matched += st.Metrics.MatchedTokens
	}
	if prompt > 0 {
		res.HitRate = float64(matched) / float64(prompt)
	}
	return res, nil
}

// RunRAG builds the retrieval-joined table for a RAG dataset and executes
// its query.
func RunRAG(spec Spec, d *datagen.RAG, cfg Config) (*Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over RunRAGContext
	return RunRAGContext(context.Background(), spec, d, cfg)
}

// RunRAGContext is RunRAG honoring ctx.
func RunRAGContext(ctx context.Context, spec Spec, d *datagen.RAG, cfg Config) (*Result, error) {
	if spec.Type != RAGQA {
		return nil, fmt.Errorf("query: %s is not a RAG query", spec.Name)
	}
	tbl, err := BuildRAGTable(d)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, spec, tbl, cfg)
}
