package query

import (
	"fmt"
)

// Type is a benchmark query category (Sec. 6.1.2).
type Type string

const (
	// Filter mimics a WHERE clause: short categorical outputs.
	Filter Type = "filter"
	// Projection summarizes/interprets fields: long outputs.
	Projection Type = "projection"
	// MultiLLM chains a filter invocation and a projection invocation.
	MultiLLM Type = "multi"
	// Aggregation feeds per-row LLM scores into an AVG.
	Aggregation Type = "aggregation"
	// RAGQA answers questions over retrieved contexts.
	RAGQA Type = "rag"
)

// Spec describes one of the 16 benchmark queries.
type Spec struct {
	// Name is the benchmark identifier, e.g. "movies-filter".
	Name    string
	Dataset string
	Type    Type
	// UserPrompt is the question text (Appendix C).
	UserPrompt string
	// OutTokens is the mean output length (Table 1); per-row lengths jitter
	// ±25% deterministically.
	OutTokens int
	// KeyField is the field the question is actually about; its position in
	// the prompt drives the oracle's accuracy model.
	KeyField string
	// Choices is the label alphabet for classification queries (nil for
	// free-text outputs).
	Choices []string
	// TruthHidden names the hidden column with ground truth ("label",
	// "sentiment", or "score"); empty for free-text queries.
	TruthHidden string
	// Second, for MultiLLM queries, names the projection spec applied to the
	// rows passing the filter, and FilterPass the answer that passes.
	Second     string
	FilterPass string
	// RowKeys, when non-nil, maps a source row to the key seeding the
	// oracle's latent per-row draws (default: the row position). Content-
	// derived keys (the LLM-SQL executor passes a hash of the row's cells)
	// make a row's answer independent of how a plan slices, joins, or
	// reorders the stage's input table — as a real model's answer would be.
	RowKeys func(row int) uint64
	// RowOutTokens, when non-nil, overrides OutTokensFor per source row.
	// The serving runtime's cross-query batcher sets it when it coalesces
	// rows from several statements into one stage, so every row keeps the
	// exact output budget its own statement would have given it.
	RowOutTokens func(row int) int
}

// specs is the benchmark registry: 16 queries across 5 types, matching
// Sec. 6.1.2 and Appendix A/C.
var specs = []Spec{
	// --- T1: LLM filter (5 queries) ---
	{
		Name: "movies-filter", Dataset: "Movies", Type: Filter,
		UserPrompt: "Given the following fields, answer in one word, 'Yes' or 'No', whether the movie would be suitable for kids. Answer with ONLY 'Yes' or 'No'.",
		OutTokens:  2, KeyField: "movieinfo", Choices: []string{"Yes", "No"}, TruthHidden: "label",
	},
	{
		Name: "products-filter", Dataset: "Products", Type: Filter,
		UserPrompt: "Given the following fields determine if the review speaks positively ('POSITIVE'), negatively ('NEGATIVE'), or neutral ('NEUTRAL') about the product. Answer only 'POSITIVE', 'NEGATIVE', or 'NEUTRAL', nothing else.",
		OutTokens:  3, KeyField: "text", Choices: []string{"POSITIVE", "NEGATIVE", "NEUTRAL"}, TruthHidden: "label",
	},
	{
		Name: "bird-filter", Dataset: "BIRD", Type: Filter,
		UserPrompt: "Given the following fields related to posts in an online codebase community, answer whether the post is related to statistics. Answer with only 'YES' or 'NO'.",
		OutTokens:  2, KeyField: "Body", Choices: []string{"YES", "NO"}, TruthHidden: "label",
	},
	{
		Name: "pdmx-filter", Dataset: "PDMX", Type: Filter,
		UserPrompt: "Based on following fields, answer 'YES' or 'NO' if any of the song information references a specific individual. Answer only 'YES' or 'NO', nothing else.",
		OutTokens:  2, KeyField: "composername", Choices: []string{"YES", "NO"}, TruthHidden: "label",
	},
	{
		Name: "beer-filter", Dataset: "Beer", Type: Filter,
		UserPrompt: "Based on the beer descriptions, does this beer have European origin? Answer 'YES' if it does or 'NO' if it doesn't.",
		OutTokens:  2, KeyField: "beer/style", Choices: []string{"YES", "NO"}, TruthHidden: "label",
	},

	// --- T2: LLM projection (5 queries) ---
	{
		Name: "movies-projection", Dataset: "Movies", Type: Projection,
		UserPrompt: "Given information including movie descriptions and critic reviews, summarize the good qualities in this movie that led to a favorable rating.",
		OutTokens:  29, KeyField: "reviewcontent",
	},
	{
		Name: "products-projection", Dataset: "Products", Type: Projection,
		UserPrompt: "Given the following fields related to amazon products, summarize the product, then answer whether the product description is consistent with the quality expressed in the review.",
		OutTokens:  107, KeyField: "text",
	},
	{
		Name: "bird-projection", Dataset: "BIRD", Type: Projection,
		UserPrompt: "Given the following fields related to posts in an online codebase community, summarize how the comment Text related to the post body.",
		OutTokens:  43, KeyField: "Text",
	},
	{
		Name: "pdmx-projection", Dataset: "PDMX", Type: Projection,
		UserPrompt: "Given the following fields, provide an overview on the music type, and analyze the given scores. Give exactly 50 words of summary.",
		OutTokens:  72, KeyField: "text",
	},
	{
		Name: "beer-projection", Dataset: "Beer", Type: Projection,
		UserPrompt: "Given the following fields, provide an high-level overview on the beer and review in a 20 words paragraph.",
		OutTokens:  38, KeyField: "beer/style",
	},

	// --- T3: Multi-LLM invocation (2 queries) ---
	{
		Name: "movies-multi", Dataset: "Movies", Type: MultiLLM,
		UserPrompt: "Given the following review, answer whether the sentiment associated is 'POSITIVE' or 'NEGATIVE'. Answer in all caps with ONLY 'POSITIVE' or 'NEGATIVE':",
		OutTokens:  3, KeyField: "reviewcontent",
		Choices: []string{"POSITIVE", "NEGATIVE"}, TruthHidden: "sentiment",
		Second: "movies-multi-projection", FilterPass: "NEGATIVE",
	},
	{
		Name: "products-multi", Dataset: "Products", Type: MultiLLM,
		UserPrompt: "Given the following review, answer whether the sentiment associated is 'POSITIVE' or 'NEGATIVE'. Answer in all caps with ONLY 'POSITIVE' or 'NEGATIVE':",
		OutTokens:  3, KeyField: "text",
		Choices: []string{"POSITIVE", "NEGATIVE"}, TruthHidden: "sentiment",
		Second: "products-multi-projection", FilterPass: "NEGATIVE",
	},
	// Second stages of T3 (not counted among the 16 top-level queries).
	{
		Name: "movies-multi-projection", Dataset: "Movies", Type: Projection,
		UserPrompt: "Given the information about a movie, summarize the good qualities that led to a favorable rating.",
		OutTokens:  16, KeyField: "reviewcontent",
	},
	{
		Name: "products-multi-projection", Dataset: "Products", Type: Projection,
		UserPrompt: "Given the following fields related to amazon products, summarize the product, then answer whether the product description is consistent with the quality expressed in the review.",
		OutTokens:  62, KeyField: "text",
	},

	// --- T4: LLM aggregation (2 queries) ---
	{
		Name: "movies-agg", Dataset: "Movies", Type: Aggregation,
		UserPrompt: "Given the following fields of a movie description and a user review, assign a sentiment score for the review out of 5. Answer with ONLY a single integer between 1 (bad) and 5 (good).",
		OutTokens:  2, KeyField: "reviewcontent", TruthHidden: "score",
	},
	{
		Name: "products-agg", Dataset: "Products", Type: Aggregation,
		UserPrompt: "Given the following fields of a product description and a user review, assign a sentiment score for the review out of 5. Answer with ONLY a single integer between 1 (bad) and 5 (good).",
		OutTokens:  2, KeyField: "text", TruthHidden: "score",
	},

	// --- T5: RAG (2 queries) ---
	{
		Name: "fever-rag", Dataset: "FEVER", Type: RAGQA,
		UserPrompt: "You are given 4 pieces of evidence and a claim. Answer SUPPORTS if the pieces of evidence support the given claim, REFUTES if the evidence refutes the given claim, or NOT ENOUGH INFO if there is not enough information to answer. Your answer should just be SUPPORTS, REFUTES, or NOT ENOUGH INFO and nothing else.",
		OutTokens:  3, KeyField: "claim",
		Choices: []string{"SUPPORTS", "REFUTES", "NOT ENOUGH INFO"}, TruthHidden: "label",
	},
	{
		Name: "squad-rag", Dataset: "SQuAD", Type: RAGQA,
		UserPrompt: "Given a question and supporting contexts, answer the provided question.",
		OutTokens:  11, KeyField: "question",
	},
}

// Specs returns the top-level benchmark queries (the 16 of Sec. 6.1.2),
// excluding internal second stages.
func Specs() []Spec {
	var out []Spec
	for _, s := range specs {
		if s.Name == "movies-multi-projection" || s.Name == "products-multi-projection" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// ByName looks up any spec, including multi-LLM second stages.
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("query: unknown spec %q", name)
}

// ForDataset returns the spec of the given type over the given dataset.
func ForDataset(dataset string, t Type) (Spec, error) {
	for _, s := range specs {
		if s.Dataset == dataset && s.Type == t {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("query: no %s query for dataset %q", t, dataset)
}

// OutTokensFor returns the deterministic output budget for a source row:
// the spec mean ±25% by hash, unless RowOutTokens overrides it.
func (s Spec) OutTokensFor(source int) int {
	if s.RowOutTokens != nil {
		return s.RowOutTokens(source)
	}
	if s.OutTokens <= 1 {
		return 1
	}
	span := s.OutTokens / 2 // ±25%
	if span == 0 {
		return s.OutTokens
	}
	h := uint64(source)*2654435761 + uint64(len(s.Name))
	return s.OutTokens - span/2 + int(h%uint64(span+1))
}
