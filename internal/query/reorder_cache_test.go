package query

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/table"
)

func cacheTestTable(rows int, salt string) *table.Table {
	t := table.New("id", "group", "text")
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			fmt.Sprintf("id-%03d%s", i, salt),
			fmt.Sprintf("grp-%d", i%3),
			fmt.Sprintf("some longer payload text %d about topic %d", i%5, i%3),
		)
	}
	return t
}

func cacheTestSpec(prompt string) Spec {
	return Spec{
		Name: "reorder-cache-test", Dataset: "adhoc", Type: Projection,
		UserPrompt: prompt, OutTokens: 4,
	}
}

// TestReorderCacheSkipsRepeatedSolve is the satellite pin: an identical
// repeated batch window (same stage key, same rows) solves GGR once — the
// second stage run is served from the reorder cache with the same schedule.
func TestReorderCacheSkipsRepeatedSolve(t *testing.T) {
	rc := NewReorderCache(0)
	cfg := Config{Policy: CacheGGR, ReorderCache: rc}
	tbl := cacheTestTable(24, "")
	spec := cacheTestSpec("Summarize the text.")

	first, err := RunStage(spec, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 1 || s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first window: %+v, want 1 solve / 1 miss", s)
	}
	second, err := RunStage(spec, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 1 || s.Hits != 1 {
		t.Fatalf("after repeated window: %+v, want solves pinned at 1 with a hit", s)
	}
	if !reflect.DeepEqual(first.Outputs, second.Outputs) {
		t.Fatal("cached schedule changed the stage outputs")
	}
	if first.PHC != second.PHC {
		t.Fatalf("cached PHC %d differs from solved %d", second.PHC, first.PHC)
	}
}

// TestReorderCacheMissesOnChange pins the key: a changed row set or a
// different stage key (another prompt) must re-solve.
func TestReorderCacheMissesOnChange(t *testing.T) {
	rc := NewReorderCache(0)
	cfg := Config{Policy: CacheGGR, ReorderCache: rc}
	spec := cacheTestSpec("Summarize the text.")

	if _, err := RunStage(spec, cacheTestTable(24, ""), cfg); err != nil {
		t.Fatal(err)
	}
	// Same schema and stage key, one row's content differs: must miss.
	if _, err := RunStage(spec, cacheTestTable(24, "x"), cfg); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 2 || s.Hits != 0 {
		t.Fatalf("changed rows served from cache: %+v", s)
	}
	// Same rows, different prompt → different StageKey: must miss.
	if _, err := RunStage(cacheTestSpec("Translate the text."), cacheTestTable(24, ""), cfg); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 3 || s.Hits != 0 {
		t.Fatalf("changed stage key served from cache: %+v", s)
	}
	// FDs steer the solver, so they are part of the content hash.
	withFD := cacheTestTable(24, "")
	fds := table.NewFDSet()
	fds.AddGroup("group", "text")
	if err := withFD.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStage(spec, withFD, cfg); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 4 {
		t.Fatalf("changed FDs served from cache: %+v", s)
	}
}

// TestReorderCacheEvictsLRU pins the bound.
func TestReorderCacheEvictsLRU(t *testing.T) {
	rc := NewReorderCache(2)
	cfg := Config{Policy: CacheGGR, ReorderCache: rc}
	spec := cacheTestSpec("Summarize the text.")
	for _, salt := range []string{"a", "b", "c"} {
		if _, err := RunStage(spec, cacheTestTable(8, salt), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := rc.Len(); got != 2 {
		t.Fatalf("cache holds %d schedules, capacity 2", got)
	}
	// "a" was evicted: re-running it must solve again.
	if _, err := RunStage(spec, cacheTestTable(8, "a"), cfg); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Solves != 4 {
		t.Fatalf("evicted entry served from cache: %+v", s)
	}
}

// TestPromptCacheMemoizes pins the tokenization memo: repeated texts hit,
// results match a fresh tokenizer's token count, and the memo is bounded.
func TestPromptCacheMemoizes(t *testing.T) {
	pc := NewPromptCache(4)
	a := pc.Encode("the same text")
	b := pc.Encode("the same text")
	if &a[0] != &b[0] {
		t.Fatal("repeated encode did not return the memoized slice")
	}
	if pc.Hits() != 1 || pc.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", pc.Hits(), pc.Misses())
	}
	for i := 0; i < 8; i++ {
		pc.Encode(fmt.Sprintf("distinct text %d", i))
	}
	if got := pc.Len(); got != 4 {
		t.Fatalf("memo holds %d texts, capacity 4", got)
	}
}

// TestPromptCacheStageIdentity: a stage run through the shared memo returns
// the same outputs and the same prompt-token accounting as the historical
// per-stage tokenizer.
func TestPromptCacheStageIdentity(t *testing.T) {
	tbl := cacheTestTable(24, "")
	spec := cacheTestSpec("Summarize the text.")
	plain, err := RunStage(spec, tbl, Config{Policy: CacheGGR})
	if err != nil {
		t.Fatal(err)
	}
	memo, err := RunStage(spec, tbl, Config{Policy: CacheGGR, PromptCache: NewPromptCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outputs, memo.Outputs) {
		t.Fatal("prompt memo changed stage outputs")
	}
	if plain.Metrics.PromptTokens != memo.Metrics.PromptTokens {
		t.Fatalf("prompt tokens differ: plain %d, memo %d",
			plain.Metrics.PromptTokens, memo.Metrics.PromptTokens)
	}
	if plain.Metrics.MatchedTokens != memo.Metrics.MatchedTokens {
		t.Fatalf("matched tokens differ: plain %d, memo %d",
			plain.Metrics.MatchedTokens, memo.Metrics.MatchedTokens)
	}
}
