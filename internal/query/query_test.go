package query

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/llmsim"
	"repro/internal/tokenizer"
)

var genOpt = datagen.Options{Scale: 0.01, Seed: 7}

func cfgFor(p Policy) Config {
	return Config{Policy: p, Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4}
}

func TestPromptConstruction(t *testing.T) {
	cells := []core.Cell{{Field: "b", Value: "2"}, {Field: "a", Value: "1"}}
	p := BuildPrompt("Is it good?", cells)
	if !strings.HasPrefix(p, SystemPrompt) {
		t.Error("prompt missing system prefix")
	}
	if !strings.Contains(p, "Is it good?") {
		t.Error("prompt missing user question")
	}
	// Field order must be preserved exactly: b before a.
	if strings.Index(p, "\"b\"") > strings.Index(p, "\"a\"") {
		t.Error("JSON key order not preserved")
	}
}

func TestRowJSONEscaping(t *testing.T) {
	j := RowJSON([]core.Cell{{Field: "f", Value: "has \"quotes\" and\nnewline"}})
	if !strings.Contains(j, `\"quotes\"`) || !strings.Contains(j, `\n`) {
		t.Errorf("escaping broken: %s", j)
	}
}

func TestSharedPrefixIdenticalAcrossRows(t *testing.T) {
	// All requests of a query must share the (system + question) token
	// prefix — the hit-rate floor for every baseline.
	tok := tokenizer.New()
	a := tok.Encode(BuildPrompt("Q?", []core.Cell{{Field: "x", Value: "one"}}))
	b := tok.Encode(BuildPrompt("Q?", []core.Cell{{Field: "x", Value: "two"}}))
	p := tok.Encode(PromptPrefix("Q?"))
	for i := range p {
		if a[i] != p[i] || b[i] != p[i] {
			t.Fatalf("prefix diverges at token %d", i)
		}
	}
}

func TestSpecsRegistry(t *testing.T) {
	all := Specs()
	if len(all) != 16 {
		t.Fatalf("benchmark has %d queries, want 16", len(all))
	}
	byType := map[Type]int{}
	for _, s := range all {
		byType[s.Type]++
	}
	want := map[Type]int{Filter: 5, Projection: 5, MultiLLM: 2, Aggregation: 2, RAGQA: 2}
	for ty, n := range want {
		if byType[ty] != n {
			t.Errorf("%s: %d queries, want %d", ty, byType[ty], n)
		}
	}
	if _, err := ByName("movies-multi-projection"); err != nil {
		t.Error("second stage not resolvable")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, err := ForDataset("Movies", Filter); err != nil {
		t.Error("ForDataset lookup failed")
	}
	if _, err := ForDataset("Movies", RAGQA); err == nil {
		t.Error("impossible dataset/type combination accepted")
	}
}

func TestOutTokensDeterministicAndBounded(t *testing.T) {
	s, _ := ByName("products-projection") // mean 107
	for src := 0; src < 200; src++ {
		a, b := s.OutTokensFor(src), s.OutTokensFor(src)
		if a != b {
			t.Fatal("output budget nondeterministic")
		}
		if a < 107-40 || a > 107+40 {
			t.Fatalf("row %d: out tokens %d too far from mean 107", src, a)
		}
	}
	f, _ := ByName("movies-filter")
	if f.OutTokensFor(3) < 1 {
		t.Error("filter output below 1 token")
	}
}

func TestRunFilterQueryAllPolicies(t *testing.T) {
	d := datagen.Movies(genOpt)
	spec, _ := ByName("movies-filter")
	var jcts []float64
	for _, p := range Policies {
		res, err := Run(spec, d.Table, cfgFor(p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.Outputs) != d.Table.NumRows() {
			t.Fatalf("%s: %d outputs for %d rows", p, len(res.Outputs), d.Table.NumRows())
		}
		for i, out := range res.Outputs {
			if out != "Yes" && out != "No" {
				t.Fatalf("%s row %d: invalid output %q", p, i, out)
			}
		}
		if len(res.Passing) == 0 || len(res.Passing) == d.Table.NumRows() {
			t.Errorf("%s: degenerate filter pass count %d", p, len(res.Passing))
		}
		jcts = append(jcts, res.JCT)
	}
	noCache, orig, ggr := jcts[0], jcts[1], jcts[2]
	if !(ggr < orig && orig < noCache) {
		t.Errorf("JCT ordering violated: nocache %.1f, original %.1f, ggr %.1f", noCache, orig, ggr)
	}
}

func TestGGRImprovesHitRate(t *testing.T) {
	// At tiny scales the whole working set fits in KV memory and even the
	// original order hits well; shrink the GPU so eviction is live, as it is
	// at full scale (80+ BIRD posts × ~600 tokens ≫ pool).
	d := datagen.BIRD(genOpt)
	spec, _ := ByName("bird-filter")
	smallGPU := llmsim.Cluster{
		GPU:   llmsim.GPUSpec{Name: "L4-small", MemBytes: 18.5e9, FLOPS: 121e12, Bandwidth: 300e9},
		Count: 1, TPEfficiency: 1,
	}
	cfg := func(p Policy) Config {
		return Config{Policy: p, Model: llmsim.Llama3_8B, Cluster: smallGPU}
	}
	orig, err := Run(spec, d.Table, cfg(CacheOriginal))
	if err != nil {
		t.Fatal(err)
	}
	ggr, err := Run(spec, d.Table, cfg(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	if ggr.HitRate <= orig.HitRate {
		t.Errorf("GGR hit rate %.2f not above original %.2f", ggr.HitRate, orig.HitRate)
	}
	if ggr.HitRate < 0.5 {
		t.Errorf("GGR hit rate %.2f implausibly low for BIRD", ggr.HitRate)
	}
}

func TestAggregationQuery(t *testing.T) {
	d := datagen.Products(genOpt)
	spec, _ := ByName("products-agg")
	res, err := Run(spec, d.Table, cfgFor(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	if res.Average < 1 || res.Average > 5 {
		t.Errorf("average score %.2f outside [1,5]", res.Average)
	}
	for i, out := range res.Outputs {
		v, err := strconv.Atoi(out)
		if err != nil || v < 1 || v > 5 {
			t.Fatalf("row %d: invalid score %q", i, out)
		}
	}
}

func TestMultiLLMQuery(t *testing.T) {
	d := datagen.Movies(genOpt)
	spec, _ := ByName("movies-multi")
	res, err := Run(spec, d.Table, cfgFor(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("multi query ran %d stages", len(res.Stages))
	}
	if res.Stages[1].Rows != len(res.Passing) {
		t.Errorf("second stage saw %d rows, filter passed %d", res.Stages[1].Rows, len(res.Passing))
	}
	if res.Stages[1].Rows == 0 {
		t.Error("no rows passed the sentiment filter")
	}
	if res.JCT <= res.Stages[0].Metrics.JCT {
		t.Error("total JCT must include both stages")
	}
	// Second stage outputs free text for passing rows only.
	if got := len(res.Outputs); got != res.Stages[1].Rows {
		t.Errorf("final outputs %d != second stage rows %d", got, res.Stages[1].Rows)
	}
}

func TestProjectionOutputsFreeText(t *testing.T) {
	d := datagen.Beer(genOpt)
	spec, _ := ByName("beer-projection")
	res, err := Run(spec, d.Table, cfgFor(CacheOriginal))
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if out == "" {
			t.Fatalf("row %d: empty projection output", i)
		}
	}
}

func TestBuildRAGTable(t *testing.T) {
	d := datagen.FEVER(genOpt)
	tbl, err := BuildRAGTable(d)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 1+d.K {
		t.Fatalf("RAG table has %d cols, want %d", tbl.NumCols(), 1+d.K)
	}
	if tbl.Columns()[0] != "claim" || tbl.Columns()[1] != "evidence1" {
		t.Errorf("column names = %v", tbl.Columns())
	}
	if tbl.NumRows() != d.Questions.NumRows() {
		t.Errorf("rows = %d, want %d", tbl.NumRows(), d.Questions.NumRows())
	}
	if _, ok := tbl.Hidden("label"); !ok {
		t.Error("labels lost in RAG join")
	}
	// Retrieval quality: most questions should retrieve contexts of their
	// own topic (contexts embed the topic keywords).
	topics, _ := tbl.Hidden("topic")
	ei, _ := tbl.ColIndex("evidence1")
	hits := 0
	for i := 0; i < tbl.NumRows(); i++ {
		// Topic keywords embed the topic id as a 3-digit suffix.
		if strings.Contains(tbl.Cell(i, ei), topicTag(topics[i])) {
			hits++
		}
	}
	if ratio := float64(hits) / float64(tbl.NumRows()); ratio < 0.8 {
		t.Errorf("only %.0f%% of questions retrieved own-topic evidence", 100*ratio)
	}
}

// topicTag recovers the zero-padded keyword suffix tied to a topic id.
func topicTag(topic string) string {
	n, _ := strconv.Atoi(topic)
	return fmt.Sprintf("%03d", n)
}

func TestRAGQueryEndToEnd(t *testing.T) {
	d := datagen.FEVER(genOpt)
	spec, _ := ByName("fever-rag")
	res, err := RunRAG(spec, d, cfgFor(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"SUPPORTS": true, "REFUTES": true, "NOT ENOUGH INFO": true}
	for i, out := range res.Outputs {
		if !valid[out] {
			t.Fatalf("row %d: invalid RAG answer %q", i, out)
		}
	}
	orig, err := RunRAG(spec, d, cfgFor(CacheOriginal))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate <= orig.HitRate {
		t.Errorf("RAG GGR hit rate %.2f not above original %.2f", res.HitRate, orig.HitRate)
	}
}

func TestRunRAGRejectsNonRAGSpec(t *testing.T) {
	d := datagen.FEVER(genOpt)
	spec, _ := ByName("movies-filter")
	if _, err := RunRAG(spec, d, cfgFor(CacheGGR)); err == nil {
		t.Error("non-RAG spec accepted")
	}
}

func TestEmptyTableStage(t *testing.T) {
	d := datagen.Movies(genOpt)
	spec, _ := ByName("movies-filter")
	empty := d.Table.Head(0)
	res, err := RunStage(spec, empty, cfgFor(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 || len(res.Outputs) != 0 {
		t.Errorf("empty stage produced %d rows", res.Rows)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	d := datagen.Movies(genOpt)
	spec, _ := ByName("movies-filter")
	cfg := cfgFor(Policy("bogus"))
	if _, err := Run(spec, d.Table, cfg); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestKeyFieldRelPos(t *testing.T) {
	cells := []core.Cell{{Field: "a"}, {Field: "b"}, {Field: "c"}}
	if p := KeyFieldRelPos(cells, "a"); p != 0 {
		t.Errorf("first field relPos = %f", p)
	}
	if p := KeyFieldRelPos(cells, "c"); p != 1 {
		t.Errorf("last field relPos = %f", p)
	}
	if p := KeyFieldRelPos(cells, "b"); p != 0.5 {
		t.Errorf("middle field relPos = %f", p)
	}
	if p := KeyFieldRelPos(cells, "zzz"); p != 0.5 {
		t.Errorf("missing field relPos = %f", p)
	}
	if p := KeyFieldRelPos(cells[:1], "a"); p != 0.5 {
		t.Errorf("single-field relPos = %f", p)
	}
}

func TestAnswersConsistentAcrossPolicies(t *testing.T) {
	// The oracle draw is keyed by source row, so for a dataset with zero
	// position coefficient the answers must be identical across schedules.
	d := datagen.BIRD(genOpt) // 8B BIRD coefficient is 0.00
	spec, _ := ByName("bird-filter")
	a, err := Run(spec, d.Table, cfgFor(CacheOriginal))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, d.Table, cfgFor(CacheGGR))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Fatalf("row %d: answers differ (%q vs %q) despite zero position effect",
				i, a.Outputs[i], b.Outputs[i])
		}
	}
}

func TestBestFixedPolicyRuns(t *testing.T) {
	d := datagen.Movies(genOpt)
	spec, _ := ByName("movies-filter")
	res, err := Run(spec, d.Table, cfgFor(CacheBestFixed))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate <= 0 {
		t.Error("best-fixed policy produced zero hit rate")
	}
}
