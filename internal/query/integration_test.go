package query

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/oracle"
	"repro/internal/table"
)

// runAny executes any benchmark query over its dataset at tiny scale.
func runAny(t *testing.T, spec Spec, cfg Config) *Result {
	t.Helper()
	opt := datagen.Options{Scale: 0.006, Seed: 11}
	var tbl *table.Table
	switch spec.Type {
	case RAGQA:
		d, err := datagen.RAGByName(spec.Dataset, opt)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err = BuildRAGTable(d)
		if err != nil {
			t.Fatal(err)
		}
	default:
		d, err := datagen.RelationalByName(spec.Dataset, opt)
		if err != nil {
			t.Fatal(err)
		}
		tbl = d.Table
	}
	res, err := Run(spec, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAllSixteenQueriesRunEndToEnd exercises every benchmark query under the
// GGR policy: every stage must verify, produce outputs, and account time.
func TestAllSixteenQueriesRunEndToEnd(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := runAny(t, spec, Config{Policy: CacheGGR})
			if res.JCT <= 0 {
				t.Error("no serving time accounted")
			}
			if len(res.Outputs) == 0 {
				t.Error("no outputs")
			}
			for _, st := range res.Stages {
				if st.Rows > 0 && st.Metrics.PromptTokens == 0 {
					t.Errorf("stage %s: no prompt tokens", st.Spec.Name)
				}
			}
		})
	}
}

// TestSemanticsIdenticalAcrossPoliciesWhenInsensitive pins the optimization
// contract: for datasets whose oracle has no position sensitivity, every
// policy yields byte-identical outputs — reordering changes cost only.
func TestSemanticsIdenticalAcrossPoliciesWhenInsensitive(t *testing.T) {
	// Build a profile with zero coefficients so only scheduling differs.
	neutral := oracle.Profile{Name: "neutral-model", DefaultBase: 0.8}
	specs := []string{"movies-filter", "bird-filter", "products-agg", "fever-rag"}
	for _, name := range specs {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var ref []string
		for _, p := range []Policy{NoCache, CacheOriginal, CacheGGR, CacheBestFixed} {
			res := runAny(t, spec, Config{Policy: p, Oracle: neutral})
			if ref == nil {
				ref = res.Outputs
				continue
			}
			if len(res.Outputs) != len(ref) {
				t.Fatalf("%s/%s: output count changed", name, p)
			}
			for i := range ref {
				if res.Outputs[i] != ref[i] {
					t.Fatalf("%s/%s: row %d output %q != %q — reordering changed semantics",
						name, p, i, res.Outputs[i], ref[i])
				}
			}
		}
	}
}

// TestJCTOrderingAcrossSuite asserts the paper's headline relation (GGR ≤
// Original ≤ NoCache, with slack for decode-dominated cases) on every
// non-RAG query type.
func TestJCTOrderingAcrossSuite(t *testing.T) {
	for _, name := range []string{"movies-filter", "bird-projection", "movies-agg", "products-multi"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		jct := map[Policy]float64{}
		for _, p := range Policies {
			jct[p] = runAny(t, spec, Config{Policy: p}).JCT
		}
		if jct[CacheGGR] > jct[NoCache] {
			t.Errorf("%s: GGR %.1f slower than NoCache %.1f", name, jct[CacheGGR], jct[NoCache])
		}
		if jct[CacheGGR] > jct[CacheOriginal]*1.1 {
			t.Errorf("%s: GGR %.1f more than 10%% over Original %.1f", name, jct[CacheGGR], jct[CacheOriginal])
		}
	}
}

// TestSolverTimeNegligible pins the Sec. 6.5 claim at test scale: scheduling
// overhead is a vanishing fraction of serving time.
func TestSolverTimeNegligible(t *testing.T) {
	spec, _ := ByName("beer-filter")
	res := runAny(t, spec, Config{Policy: CacheGGR})
	if res.SolverSeconds > 2 {
		t.Errorf("solver took %.2fs on a tiny table", res.SolverSeconds)
	}
}
