package query

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/table"
	"repro/internal/vecdb"
)

// BuildRAGTable materializes a RAG query's input relation: for every
// question it retrieves the top-k corpus passages by embedding similarity
// and emits a row (question, ctx1..ctxk) in retrieval-score order — the
// "VectorDB.search(question, k)" of the paper's T5 example. Hidden columns
// (labels, topics) carry over from the question table.
//
// Because questions about one topic retrieve overlapping context sets in
// differing orders, the resulting table is exactly the reordering
// opportunity Sec. 6.2 describes for RAG: GGR aligns shared contexts into
// prefixes across rows.
func BuildRAGTable(d *datagen.RAG) (*table.Table, error) {
	emb := vecdb.NewEmbedder(256)
	ix := vecdb.NewIndex(emb)
	ix.AddAll(d.Corpus)

	ctxName := "context"
	if d.QuestionField == "claim" {
		ctxName = "evidence"
	}
	cols := []string{d.QuestionField}
	for i := 1; i <= d.K; i++ {
		cols = append(cols, fmt.Sprintf("%s%d", ctxName, i))
	}
	out := table.New(cols...)

	qIdx, ok := d.Questions.ColIndex(d.QuestionField)
	if !ok {
		return nil, fmt.Errorf("query: question table missing column %q", d.QuestionField)
	}
	for i := 0; i < d.Questions.NumRows(); i++ {
		q := d.Questions.Cell(i, qIdx)
		res, err := ix.Search(q, d.K)
		if err != nil {
			return nil, fmt.Errorf("query: retrieval for row %d: %w", i, err)
		}
		cells := make([]string, 0, 1+d.K)
		cells = append(cells, q)
		for _, r := range res {
			cells = append(cells, d.Corpus[r.ID])
		}
		for len(cells) < 1+d.K {
			cells = append(cells, "") // corpus smaller than k (tiny scales)
		}
		if err := out.AppendRow(cells...); err != nil {
			return nil, err
		}
	}
	for _, h := range []string{"label", "topic"} {
		if vals, ok := d.Questions.Hidden(h); ok {
			if err := out.SetHidden(h, vals); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
