package query

import "container/list"

// lruMap is the one map+list LRU both planning caches share (schedules in
// ReorderCache, token slices in PromptCache): insert-if-absent with
// eviction past capacity, lookup that refreshes recency. It is not safe for
// concurrent use — each owner guards it with its own mutex.
type lruMap[K comparable, V any] struct {
	capacity int
	entries  map[K]*list.Element
	order    *list.List // of lruCell[K, V]; front = most recently used
}

type lruCell[K comparable, V any] struct {
	key K
	val V
}

func newLRUMap[K comparable, V any](capacity int) *lruMap[K, V] {
	return &lruMap[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
	}
}

// get returns the value for k, refreshing its recency.
func (l *lruMap[K, V]) get(k K) (V, bool) {
	if e, ok := l.entries[k]; ok {
		l.order.MoveToFront(e)
		return e.Value.(lruCell[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts k (refreshing recency if already present, keeping the first
// value — callers racing to fill one key all computed the same thing) and
// evicts least-recently-used entries past capacity.
func (l *lruMap[K, V]) put(k K, v V) {
	if e, ok := l.entries[k]; ok {
		l.order.MoveToFront(e)
		return
	}
	l.entries[k] = l.order.PushFront(lruCell[K, V]{key: k, val: v})
	for len(l.entries) > l.capacity {
		tail := l.order.Back()
		l.order.Remove(tail)
		delete(l.entries, tail.Value.(lruCell[K, V]).key)
	}
}

func (l *lruMap[K, V]) len() int { return len(l.entries) }
