// Package query implements the LLM-query layer of the reproduction: the
// generic LLM operator over relational tables (Sec. 3.1), prompt
// construction (Sec. 5 / Appendix C), the five query types of the benchmark
// suite (Sec. 6.1.2), and the executor that wires reordering schedules into
// the serving simulator.
package query

import (
	"strconv"
	"strings"

	"repro/internal/core"
)

// SystemPrompt is the shared instruction prefix (Appendix C). Because it is
// identical across every request of a query, it is the floor of each
// baseline's prefix hit rate.
const SystemPrompt = "You are a data analyst. Use the provided JSON data to answer the user query " +
	"based on the specified fields. Respond with only the answer, no extra formatting."

// PromptPrefix renders the static part of every request of a query: system
// prompt plus the user's question. It ends at a hard token boundary so the
// per-row JSON payload never merges into the shared prefix.
func PromptPrefix(userPrompt string) string {
	var sb strings.Builder
	sb.WriteString(SystemPrompt)
	sb.WriteString("\nAnswer the below query:\n")
	sb.WriteString(userPrompt)
	sb.WriteString("\nGiven the following data:\n")
	return sb.String()
}

// RowJSON serializes a scheduled row as a JSON object whose keys appear in
// the schedule's field order (Sec. 5: JSON encoding ties field names to
// values for the LLM; key order is what the reordering algorithms optimize).
func RowJSON(cells []core.Cell) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, c := range cells {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Quote(c.Field))
		sb.WriteString(": ")
		sb.WriteString(strconv.Quote(c.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

// BuildPrompt assembles the full request text for one scheduled row.
func BuildPrompt(userPrompt string, cells []core.Cell) string {
	return PromptPrefix(userPrompt) + RowJSON(cells)
}
