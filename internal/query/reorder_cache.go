package query

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// This file amortizes the two per-flush planning costs that data-parallel
// sharding exposes once engine time stops dominating: the GGR solve over the
// batch window's combined table, and per-row prompt tokenization.
//
// Both caches are opt-in via Config (nil keeps the historical
// compute-every-time behavior); the serving runtime attaches one of each for
// its lifetime, so a dashboard fleet re-submitting the same batch window
// pays the solver and the tokenizer walk once.

// DefaultReorderCacheCapacity bounds the reorder cache in schedules.
const DefaultReorderCacheCapacity = 256

// DefaultPromptCacheCapacity bounds the prompt cache in distinct texts.
const DefaultPromptCacheCapacity = 65536

// reorderKey identifies one solve: the stage fingerprint (prompt, schema,
// policy, solver options — see StageKey) plus a 128-bit content hash of the
// table the solver would run over (cells in order, plus the FD groups that
// steer GGR's column scoring). Two independent FNV-64 streams make an
// accidental collision astronomically unlikely; a collision is not silent
// corruption regardless, because RunStageContext verifies every schedule
// against its table (core.Verify) before serving it.
type reorderKey struct {
	stageKey string
	h1, h2   uint64
}

func reorderKeyFor(stageKey string, tbl *table.Table) reorderKey {
	a, b := fnv.New64a(), fnv.New64()
	var sep = []byte{0}
	write := func(s string) {
		a.Write([]byte(s))
		a.Write(sep)
		b.Write([]byte(s))
		b.Write(sep)
	}
	for _, c := range tbl.Columns() {
		write(c)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for _, cell := range tbl.Row(i) {
			write(cell)
		}
	}
	for _, group := range tbl.FDs().Groups() {
		write("fd")
		for _, col := range group {
			write(col)
		}
	}
	return reorderKey{stageKey: stageKey, h1: a.Sum64(), h2: b.Sum64()}
}

// ReorderCache memoizes GGR solves by (StageKey, table-content hash): a
// batch window identical to an earlier one — same stage, same rows in the
// same order — reuses the earlier schedule instead of re-running the solver.
// Entries are LRU-evicted past capacity. Cached schedules are shared, never
// copied: every consumer treats a core.Schedule as immutable.
type ReorderCache struct {
	mu  sync.Mutex
	lru *lruMap[reorderKey, reorderEntry] // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
	solves atomic.Int64
}

type reorderEntry struct {
	sched *core.Schedule
	phc   int64
}

// NewReorderCache returns a cache bounded to capacity schedules (<= 0 uses
// DefaultReorderCacheCapacity).
func NewReorderCache(capacity int) *ReorderCache {
	if capacity <= 0 {
		capacity = DefaultReorderCacheCapacity
	}
	return &ReorderCache{lru: newLRUMap[reorderKey, reorderEntry](capacity)}
}

// ReorderStats is the cache's accounting: Hits and Misses count lookups,
// Solves the GGR runs performed on misses (the counter the repeated-window
// regression tests pin to 1).
type ReorderStats struct {
	Hits   int64
	Misses int64
	Solves int64
}

// Stats snapshots the counters.
func (c *ReorderCache) Stats() ReorderStats {
	return ReorderStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Solves: c.solves.Load()}
}

// Len reports the number of cached schedules.
func (c *ReorderCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.len()
}

func (c *ReorderCache) lookup(key reorderKey) (*core.Schedule, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.lru.get(key); ok {
		c.hits.Add(1)
		return ent.sched, ent.phc, true
	}
	c.misses.Add(1)
	return nil, 0, false
}

func (c *ReorderCache) store(key reorderKey, sched *core.Schedule, phc int64) {
	c.solves.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	// put keeps an existing entry when a concurrent solve won the race.
	c.lru.put(key, reorderEntry{sched: sched, phc: phc})
}

// PromptCache memoizes text tokenization over one long-lived tokenizer, so
// a row's JSON payload and a stage's prompt prefix are walked once across
// every stage and batch window that serves them. Sharing one tokenizer also
// makes token IDs stable across batches — which is what a persistent
// backend's cross-batch KV cache compares — where per-stage throwaway
// tokenizers gave the same text a different ID in every batch.
//
// Returned token slices are shared and must be treated as immutable (every
// caller appends them into a fresh prompt slice). The memo is LRU-bounded;
// the tokenizer's interned vocabulary grows with distinct text, which is the
// same growth one kvcache trie already exhibits for the same traffic.
type PromptCache struct {
	tok *tokenizer.Tokenizer
	mu  sync.Mutex
	lru *lruMap[string, []tokenizer.Token] // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
}

// NewPromptCache returns a cache bounded to capacity distinct texts (<= 0
// uses DefaultPromptCacheCapacity).
func NewPromptCache(capacity int) *PromptCache {
	if capacity <= 0 {
		capacity = DefaultPromptCacheCapacity
	}
	return &PromptCache{
		tok: tokenizer.New(),
		lru: newLRUMap[string, []tokenizer.Token](capacity),
	}
}

// Encode tokenizes text through the memo. The returned slice is shared:
// callers must not modify it.
func (p *PromptCache) Encode(text string) []tokenizer.Token {
	p.mu.Lock()
	if toks, ok := p.lru.get(text); ok {
		p.mu.Unlock()
		p.hits.Add(1)
		return toks
	}
	p.mu.Unlock()

	// Tokenize outside the memo lock: Tokenizer has its own, and a slow walk
	// must not serialize concurrent encoders of other texts.
	toks := p.tok.Encode(text)
	p.misses.Add(1)

	p.mu.Lock()
	p.lru.put(text, toks)
	p.mu.Unlock()
	return toks
}

// encoder resolves the stage executor's tokenize function: the shared memo
// when a cache is attached, a fresh tokenizer confined to the calling stage
// (the historical behavior) on a nil receiver.
func (p *PromptCache) encoder() func(string) []tokenizer.Token {
	if p == nil {
		return tokenizer.New().Encode
	}
	return p.Encode
}

// Hits and Misses report the memo's lookup accounting.
func (p *PromptCache) Hits() int64   { return p.hits.Load() }
func (p *PromptCache) Misses() int64 { return p.misses.Load() }

// Len reports the number of memoized texts.
func (p *PromptCache) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.len()
}
