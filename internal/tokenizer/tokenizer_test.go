package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := New()
	cases := []string{
		"",
		"hello",
		"hello world",
		"Summarize: the movie was great, 5/5!",
		"  leading and   multiple spaces",
		"punctuation!?.,;:'\"()[]{}",
		"a_very_long_identifier_with_underscores",
		"short a b c",
		strings.Repeat("long-word-sequence ", 40),
		"{\"field\": \"value\", \"n\": 42}",
	}
	for _, c := range cases {
		got := tok.Decode(tok.Encode(c))
		if got != c {
			t.Errorf("round trip mismatch:\n in  %q\n out %q", c, got)
		}
	}
}

func TestEncodeDeterministicIDs(t *testing.T) {
	a, b := New(), New()
	texts := []string{"alpha beta gamma", "beta gamma delta", "alpha beta"}
	for _, txt := range texts {
		ta := a.Encode(txt)
		tb := b.Encode(txt)
		if len(ta) != len(tb) {
			t.Fatalf("length mismatch for %q: %d vs %d", txt, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("token %d differs for %q: %d vs %d", i, txt, ta[i], tb[i])
			}
		}
	}
}

func TestPrefixStability(t *testing.T) {
	// Two prompts that share a text prefix must share the token prefix that
	// covers it (the last shared token may merge with the divergent suffix,
	// exactly as in real BPE, so we check up to len(p)-1).
	tok := New()
	prefix := "The movie info field describes a long plot. "
	a := tok.Encode(prefix + "Review one says it was fine.")
	b := tok.Encode(prefix + "Another opinion entirely, quite different text.")
	p := tok.Encode(prefix)
	if len(a) < len(p) || len(b) < len(p) {
		t.Fatalf("encoded prefix longer than full text: %d, %d vs %d", len(a), len(b), len(p))
	}
	shared := len(p) - 1
	for i := 0; i < shared; i++ {
		if a[i] != p[i] {
			t.Fatalf("text a diverges from prefix at token %d", i)
		}
		if a[i] != b[i] {
			t.Fatalf("texts a and b diverge inside shared prefix at token %d", i)
		}
	}
	// When the prefix ends at a hard boundary (punctuation), the whole
	// prefix tokenization is shared.
	hard := "System prompt: answer the query."
	ha := tok.Encode(hard + " data one")
	hp := tok.Encode(hard)
	for i := range hp {
		if ha[i] != hp[i] {
			t.Fatalf("hard-boundary prefix diverges at token %d", i)
		}
	}
}

func TestCountMatchesEncode(t *testing.T) {
	tok := New()
	cases := []string{
		"", "one", "one two three", "a, b, c!", strings.Repeat("x", 100),
		"internationalization acceleration", "42 1234567890",
	}
	for _, c := range cases {
		if got, want := Count(c), len(tok.Encode(c)); got != want {
			t.Errorf("Count(%q) = %d, Encode len = %d", c, got, want)
		}
	}
}

func TestCountQuickMatchesEncode(t *testing.T) {
	tok := New()
	f := func(s string) bool {
		return Count(s) == len(tok.Encode(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	tok := New()
	f := func(s string) bool {
		return tok.Decode(tok.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressionRatio(t *testing.T) {
	text := "The reordering algorithm maximizes the number of shared prefix " +
		"tokens across consecutive requests in a relational analytics workload. " +
		"Functional dependencies reduce the search space considerably."
	n := Count(text)
	ratio := float64(len(text)) / float64(n)
	if ratio < 3.0 || ratio > 8.0 {
		t.Errorf("chars per token = %.2f, want a realistic 3..8", ratio)
	}
}

func TestLongWordFragmentation(t *testing.T) {
	// 16-byte word: > maxPiece so it is chunked into 4-byte pieces.
	if got := Count("abcdefghijklmnop"); got != 4 {
		t.Errorf("16-byte word = %d tokens, want 4", got)
	}
	// 7-byte word fits in a single piece.
	if got := Count("abcdefg"); got != 1 {
		t.Errorf("7-byte word = %d tokens, want 1", got)
	}
	// 8-byte word becomes two chunks.
	if got := Count("abcdefgh"); got != 2 {
		t.Errorf("8-byte word = %d tokens, want 2", got)
	}
}

func TestVocabGrowth(t *testing.T) {
	tok := New()
	tok.Encode("alpha beta")
	n := tok.VocabSize()
	if n == 0 {
		t.Fatal("vocab empty after encode")
	}
	tok.Encode("alpha beta") // no new pieces
	if tok.VocabSize() != n {
		t.Errorf("vocab grew on repeated encode: %d -> %d", n, tok.VocabSize())
	}
	tok.Encode("gamma")
	if tok.VocabSize() <= n {
		t.Errorf("vocab did not grow on new word")
	}
}

func TestDecodeUnknownIDs(t *testing.T) {
	tok := New()
	if got := tok.Decode([]Token{999, -1}); got != "" {
		t.Errorf("decoding unknown ids = %q, want empty", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := New()
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 20)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.Encode(text)
	}
}

func BenchmarkCount(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 20)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(text)
	}
}
