// Package tokenizer implements a deterministic subword tokenizer used by the
// serving simulator and the reordering benchmarks.
//
// The real system tokenizes prompts with the Llama-3 BPE tokenizer before
// they reach the KV cache. For reproducing the paper's experiments the exact
// merge table is irrelevant; what matters is that the mapping from text to
// tokens is (a) deterministic, (b) prefix-stable — two texts that share a
// prefix ending at a word boundary produce token streams that share the
// corresponding prefix — and (c) has a realistic compression ratio (roughly
// four characters per token on English-like text). This tokenizer provides
// all three with a greedy word/piece splitter and an online-interned
// vocabulary.
package tokenizer

import (
	"strings"
	"sync"
	"unicode"
)

// Token is a vocabulary identifier. IDs are assigned in order of first
// appearance, so a tokenizer fed the same inputs in the same order always
// produces the same IDs.
type Token int32

// maxPiece is the longest surface string a single token may cover. Words
// longer than maxPiece are split into maxPiece-sized chunks, mimicking how
// BPE fragments rare long words.
const maxPiece = 7

// chunk is the piece size used when fragmenting long words.
const chunk = 4

// Tokenizer converts text to token IDs and back. It is safe for concurrent
// use. The zero value is not usable; call New.
type Tokenizer struct {
	mu     sync.RWMutex
	ids    map[string]Token // guarded by mu
	pieces []string         // guarded by mu
}

// New returns an empty tokenizer. Vocabulary entries are created on demand
// as texts are encoded.
func New() *Tokenizer {
	return &Tokenizer{ids: make(map[string]Token, 4096)}
}

// VocabSize reports how many distinct pieces have been interned so far.
func (t *Tokenizer) VocabSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.pieces)
}

// Encode converts text into a sequence of tokens. Concatenating the decoded
// pieces reproduces the input exactly.
func (t *Tokenizer) Encode(text string) []Token {
	pieces := Split(text)
	out := make([]Token, len(pieces))
	t.mu.Lock()
	for i, p := range pieces {
		id, ok := t.ids[p]
		if !ok {
			id = Token(len(t.pieces))
			t.ids[p] = id
			t.pieces = append(t.pieces, p)
		}
		out[i] = id
	}
	t.mu.Unlock()
	return out
}

// Decode reconstructs the text for a token sequence produced by Encode on
// this tokenizer. Unknown IDs decode to the empty string.
func (t *Tokenizer) Decode(tokens []Token) string {
	var sb strings.Builder
	t.mu.RLock()
	for _, id := range tokens {
		if int(id) >= 0 && int(id) < len(t.pieces) {
			sb.WriteString(t.pieces[int(id)])
		}
	}
	t.mu.RUnlock()
	return sb.String()
}

// Count reports the number of tokens Encode would produce for text without
// touching the vocabulary. It is the hot path for PHC length computations.
func (t *Tokenizer) Count(text string) int {
	return Count(text)
}

// Count reports the number of tokens the splitter produces for text. It is a
// pure function of the text and needs no tokenizer state.
func Count(text string) int {
	n := 0
	walk(text, func(start, end int) {
		n += piecesFor(end - start)
	})
	return n
}

// Split breaks text into surface pieces, one per token. Exported for tests
// and for tools that need piece boundaries.
func Split(text string) []string {
	var out []string
	walk(text, func(start, end int) {
		seg := text[start:end]
		if len(seg) <= maxPiece {
			out = append(out, seg)
			return
		}
		// Fragment long segments into fixed-size chunks. The first chunk
		// keeps any leading space so decode remains exact.
		for len(seg) > 0 {
			c := chunk
			if c > len(seg) {
				c = len(seg)
			}
			out = append(out, seg[:c])
			seg = seg[c:]
		}
	})
	return out
}

// piecesFor reports how many tokens a segment of segLen bytes becomes.
func piecesFor(segLen int) int {
	if segLen <= maxPiece {
		return 1
	}
	return (segLen + chunk - 1) / chunk
}

// walk invokes fn for each segment boundary in text. A segment is a maximal
// run of letters/digits, optionally with one leading space, or a single
// non-alphanumeric byte. Segmentation depends only on the bytes to the left
// of each boundary, which is what makes the tokenizer prefix-stable.
func walk(text string, fn func(start, end int)) {
	i := 0
	n := len(text)
	for i < n {
		start := i
		// A single leading space attaches to the following word, mirroring
		// the "Ġ"-prefixed pieces of GPT-style vocabularies.
		if text[i] == ' ' {
			i++
			if i >= n || !isWordByte(text[i]) {
				fn(start, i)
				continue
			}
		}
		if isWordByte(text[i]) {
			for i < n && isWordByte(text[i]) {
				i++
			}
			fn(start, i)
			continue
		}
		// Punctuation and control bytes are one token each.
		i++
		fn(start, i)
	}
}

func isWordByte(b byte) bool {
	if b < 0x80 {
		return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
	}
	// Treat multi-byte UTF-8 continuation uniformly as word material; the
	// synthetic corpora are ASCII so this path is rarely taken.
	return true
}
