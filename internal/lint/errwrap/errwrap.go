// Package errwrap enforces the error-chain contract: when fmt.Errorf adds
// context around an underlying error, the error argument must be formatted
// with %w so errors.Is/As keep working through the serving stack (the
// runtime matches context.Canceled and backend sentinel errors through
// several wrapping layers). Formatting an error with %v or %s silently
// flattens it to text and breaks that matching.
//
// The rule is syntactic but type-aware: in a fmt.Errorf call whose format
// string is a literal, every argument of error type must line up with a %w
// verb. Calls whose format is not a string literal are skipped (the verb
// cannot be seen), and a deliberate flattening — e.g. recording an error's
// text in a log-style message that must not be unwrappable — is annotated
// //llmqlint:nowrap on the call's line or the line above.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf must wrap error arguments with %w (not %v/%s) so " +
		"errors.Is/As see through the chain; annotate deliberate flattening //llmqlint:nowrap",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := analysis.DirectivesFor(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorf(pass, dirs, call)
			return true
		})
	}
	return nil
}

// checkErrorf flags error-typed arguments of a fmt.Errorf call whose verb
// is not %w.
func checkErrorf(pass *analysis.Pass, dirs *analysis.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || !analysis.IsPkgIdent(pass.TypesInfo, sel.X, "fmt") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamic format: verbs not visible
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !isErrorType(pass, arg) {
			continue
		}
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb == 'w' {
			continue
		}
		if dirs.Has(call.Pos(), "nowrap") {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error argument formatted with %%%c, not %%w: errors.Is/As cannot see through this wrap (annotate //llmqlint:nowrap if flattening is intended)",
			printableVerb(verb))
	}
}

// formatVerbs extracts the verb letter consumed by each successive operand
// of a Printf-style format. Width/precision/flags are skipped; `*` consumes
// an operand of its own; %% consumes none. Explicit argument indexes
// (%[1]d) are rare in this codebase and handled conservatively by mapping
// the verb to the next operand slot.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal percent: no operand
			}
			if c == '*' {
				verbs = append(verbs, '*') // width/precision operand
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' ||
				c == ' ' || c == '#' || c == '[' || c == ']' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

func isErrorType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.AssignableTo(tv.Type, errorType)
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// printableVerb renders the matched verb for the diagnostic; 0 means the
// error argument had no verb at all (extra operand).
func printableVerb(v byte) byte {
	if v == 0 {
		return '!'
	}
	return v
}
