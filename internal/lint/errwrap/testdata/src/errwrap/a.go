// Package errwrap is the errwrap analyzer's fixture: fmt.Errorf calls that
// wrap, flatten, and deliberately flatten errors.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// wrapped keeps the chain intact: legal.
func wrapped(stage string) error {
	return fmt.Errorf("stage %s: %w", stage, errSentinel)
}

// flattenedV loses the chain through %v.
func flattenedV(stage string) error {
	return fmt.Errorf("stage %s: %v", stage, errSentinel) // want `error argument formatted with %v, not %w`
}

// flattenedS loses it through %s.
func flattenedS(err error) error {
	return fmt.Errorf("run failed: %s", err) // want `error argument formatted with %s, not %w`
}

// mixed wraps one error but flattens the other.
func mixed(a, b error) error {
	return fmt.Errorf("a=%w b=%v", a, b) // want `error argument formatted with %v, not %w`
}

// deliberate flattens on purpose and says so.
func deliberate(err error) error {
	//llmqlint:nowrap
	return fmt.Errorf("terminal: %v", err)
}

// dynamicFormat cannot be checked: skipped.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

// widthOperand exercises the `*` operand slot before the error.
func widthOperand(err error) error {
	return fmt.Errorf("pad %*d then %v", 8, 1, err) // want `error argument formatted with %v, not %w`
}

// notErrorf is a different function entirely: skipped.
func notErrorf(err error) string {
	return fmt.Sprintf("oops: %v", err)
}
