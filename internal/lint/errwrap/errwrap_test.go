package errwrap_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "errwrap")
}
