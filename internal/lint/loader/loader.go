// Package loader parses and type-checks packages of this module for the
// lint suite, using only the standard library plus the go command itself.
//
// Analyzed packages are parsed from source (with comments — the annotation
// checks need them). Their dependencies are NOT re-type-checked from source:
// each import resolves through compiled export data obtained from
// `go list -export`, which serves it out of the build cache. That keeps the
// loader offline-friendly (no module proxy), fast (no transitive source
// type-checking), and correct for cgo-using stdlib packages that a source
// importer cannot handle.
package loader

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/runtime"), or a synthetic
	// name for out-of-tree fixture directories.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker soft failures. Analysis still runs on
	// what checked; the driver surfaces these as their own diagnostics.
	TypeErrors []error
}

// Loader loads packages against one shared FileSet and export-data cache.
type Loader struct {
	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
	modRoot string
	modPath string
}

// New returns a loader rooted at the module containing dir.
func New(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		modRoot: root,
		modPath: path,
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

// ModulePath reports the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modPath }

// Load resolves patterns (import paths, directories, or `./...`) to package
// directories via `go list` and loads each one. Test files are skipped: the
// suite checks library and command code, and loading external _test packages
// would double every package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	out, err := goCmd(l.modRoot, append([]string{"list", "-f", "{{.ImportPath}}\x01{{.Dir}}"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*Package
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		path, dir, ok := strings.Cut(line, "\x01")
		if !ok {
			continue
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Fixture directories (testdata trees the go tool ignores) load
// through here with a synthetic path. Returns nil when dir has no non-test
// Go files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}

	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p.Types = tpkg
	p.Info = info
	return p, nil
}

// lookup feeds the gc importer compiled export data for one import path,
// produced (and cached) by the go command's build cache.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		out, err := goCmd(l.modRoot, "list", "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("loader: export data for %s: %w", path, err)
		}
		file = strings.TrimSpace(out)
		if file == "" {
			return nil, fmt.Errorf("loader: no export data for %s (does it build?)", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// Prefetch batch-resolves export data for the transitive dependencies of
// patterns in one go command invocation, so Load does not shell out once per
// distinct import.
func (l *Loader) Prefetch(patterns ...string) {
	out, err := goCmd(l.modRoot, append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\x01{{.Export}}"}, patterns...)...)
	if err != nil {
		return // best effort; lookup falls back to per-path resolution
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		path, file, ok := strings.Cut(line, "\x01")
		if ok && file != "" {
			l.exports[path] = file
		}
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goCmd runs the go tool in dir and returns stdout.
func goCmd(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("%w: %s", err, strings.TrimSpace(stderr.String()))
	}
	return stdout.String(), nil
}
