package guardedby_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guardedby")
}
