// Package guardedby enforces the repo's mutex annotation contract: a struct
// field whose declaration comment says `guarded by <mu>` (where <mu> is a
// sibling sync.Mutex/RWMutex field) may only be read or written inside a
// function that visibly locks that mutex on the same base value:
//
//	type resultCache struct {
//		mu      sync.Mutex
//		entries map[string]*cacheEntry // guarded by mu
//	}
//
//	func (c *resultCache) len() int {
//		c.mu.Lock()          // <- what the analyzer looks for
//		defer c.mu.Unlock()
//		return len(c.entries)
//	}
//
// The check is deliberately syntactic, per the contract this repo already
// writes in prose ("All fields are guarded by ...", "needs db.mu held"): a
// function touching a guarded field must either contain a `<base>.<mu>.Lock()`
// or `.RLock()` call on the access's own base expression, declare that its
// caller holds the lock — by the existing `...Locked` name suffix convention
// (see sqlfront.registeredListLocked) or a `//llmqlint:holds <mu>` directive
// on its declaration — or be building a brand-new value (keyed composite
// literals initialize fields without locking and are not field accesses).
//
// What it cannot see: lock/access ordering within the body, closures that
// outlive the locked region, or aliasing through a second variable. It is a
// tripwire for the class of race the PR 5 replica-pool rework fixed by hand
// — a new method touching pool state without taking the pool lock — not a
// proof of race freedom; the -race CI jobs remain the dynamic backstop.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// guarded by mu` may only be accessed in " +
		"functions that lock the named mutex (or declare //llmqlint:holds mu " +
		"or carry the ...Locked suffix)",
	Run: run,
}

// guardRe extracts the mutex name from a field's annotation comment.
var guardRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		dirs := analysis.DirectivesFor(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards, dirs)
		}
	}
	return nil
}

// collectGuards maps annotated field objects to their guarding mutex field
// name, validating that the named guard is a sibling field.
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					siblings[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				m := guardRe.FindStringSubmatch(analysis.CommentText(f.Doc, f.Comment))
				if m == nil {
					continue
				}
				mu := m[1]
				if !siblings[mu] {
					pass.Reportf(f.Pos(), "field is `guarded by %s` but the struct has no field %s", mu, mu)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// checkFunc verifies every guarded-field access in fd's body (function
// literals included: a closure created in a locked region is treated as
// running under that region's locks — see the package comment's caveats).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]string, dirs *analysis.Directives) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds-lock convention, same as registeredListLocked
	}

	// held collects "base.mu" strings this function visibly locks, plus
	// "recv.mu" for every //llmqlint:holds mu directive on the declaration.
	held := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if base := analysis.ExprString(sel.X); base != "" {
				held[base] = true
			}
		}
		return true
	})
	var recv string
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	// The holds directive sits on the last doc-comment line, so its reach
	// (own line + next) covers the `func` keyword's line.
	for _, mu := range dirs.Args(fd.Pos(), "holds") {
		if recv != "" {
			held[recv+"."+mu] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[s.Obj()]
		if !guarded {
			return true
		}
		base := analysis.ExprString(sel.X)
		if base == "" || held[base+"."+mu] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s, but this function neither locks %s.%s nor declares //llmqlint:holds %s (or a ...Locked name)",
			base, sel.Sel.Name, mu, base, mu, mu)
		return true
	})
}
