// Package guardedby is the guardedby analyzer's fixture: a miniature of the
// runtime's locked structures with violations and every sanctioned pattern.
package guardedby

import "sync"

type pool struct {
	mu sync.Mutex
	// replicas is the live replica count.
	replicas int // guarded by mu
	// closed reports shutdown. // guarded by mu
	closed bool
	name   string // immutable after construction; unannotated
}

// get locks properly.
func (p *pool) get() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas
}

// grow forgets the lock entirely.
func (p *pool) grow() {
	p.replicas++ // want `p\.replicas is guarded by mu`
}

// growLocked relies on the caller-holds-lock naming convention.
func (p *pool) growLocked() {
	p.replicas++
}

// evict declares the lock held by directive.
//
//llmqlint:holds mu
func (p *pool) evict() {
	p.replicas--
}

// stop touches one guarded field under the lock and another outside it on a
// different receiver chain.
type server struct {
	rw sync.RWMutex
	// tables is the registry. // guarded by rw
	tables map[string]int
}

// read uses a read lock, which counts as holding rw.
func (s *server) read(name string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.tables[name]
}

// leak reads the registry with no lock at all.
func (s *server) leak() int {
	return len(s.tables) // want `s\.tables is guarded by rw`
}

// newServer builds the value with a composite literal: initialization is
// not an access, so constructors need no lock.
func newServer() *server {
	return &server{tables: make(map[string]int)}
}

// nested guards work through selector chains: outer.inner.replicas requires
// outer.inner.mu.
type wrapper struct {
	inner *pool
}

func (w *wrapper) ok() int {
	w.inner.mu.Lock()
	defer w.inner.mu.Unlock()
	return w.inner.replicas
}

func (w *wrapper) bad() int {
	return w.inner.replicas // want `w\.inner\.replicas is guarded by mu`
}

type orphan struct {
	// count names a guard that does not exist in the struct.
	count int // guarded by missing // want `no field missing`
}
