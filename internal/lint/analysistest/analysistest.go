// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract closely enough that
// fixtures read identically:
//
//	func bad() {
//		ctx := context.Background() // want `context\.Background`
//		_ = ctx
//	}
//
// Every line carrying a want comment must receive at least one matching
// diagnostic, every diagnostic must land on a line whose want pattern
// matches it, and mismatches in either direction fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// wantRe matches a want comment and captures its quoted pattern: either a
// backquoted or a double-quoted regexp, as in x/tools fixtures.
var wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads testdata/src/<pkg> beneath dir and applies a to it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	fixture := filepath.Join(dir, "src", pkg)
	l, err := loader.New(fixture)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	p, err := l.LoadDir(fixture, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if p == nil {
		t.Fatalf("analysistest: no Go files in %s", fixture)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("analysistest: fixture does not type-check: %v", terr)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	wants := collectWants(t, p)
	matched := make(map[string]bool)
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := lineKey(pos.Filename, pos.Line)
		re, ok := wants[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", format(pos), d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", format(pos), d.Message, re)
			continue
		}
		matched[key] = true
	}
	for key, re := range wants {
		if !matched[key] {
			t.Errorf("%s: want %q matched no diagnostic", key, re)
		}
	}
}

// collectWants scans the fixture's comments for want patterns, keyed by the
// line they annotate.
func collectWants(t *testing.T, p *loader.Package) map[string]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]*regexp.Regexp)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat[0] == '`' {
					pat = strings.Trim(pat, "`")
				} else {
					pat = strings.ReplaceAll(strings.Trim(pat, `"`), `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("analysistest: bad want pattern %q: %v", pat, err)
				}
				pos := p.Fset.Position(c.Pos())
				wants[lineKey(pos.Filename, pos.Line)] = re
			}
		}
	}
	return wants
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

func format(pos token.Position) string {
	return lineKey(pos.Filename, pos.Line)
}
