// Package accounting is the accounting analyzer's fixture: a result type
// with counting fields constructed completely, partially, as an
// accumulator, and under the escape annotation.
package accounting

// report is the fixture's accounting type.
//
//llmqlint:accounting
type report struct {
	Name       string
	Tokens     int
	Steps      int
	Seconds    float64
	ModelCalls int
	notes      []string
}

// plain is a look-alike WITHOUT the annotation: never checked.
type plain struct {
	Tokens int
	Steps  int
}

// complete keys every counter: legal.
func complete(tok, steps, calls int, sec float64) report {
	return report{
		Name:       "complete",
		Tokens:     tok,
		Steps:      steps,
		Seconds:    sec,
		ModelCalls: calls,
	}
}

// accumulator starts from the zero value: legal.
func accumulator() report {
	merged := report{}
	merged.Tokens++
	return merged
}

// nonCounting keys only non-counting fields: legal (no counter touched).
func nonCounting() report {
	return report{Name: "idle", notes: []string{"x"}}
}

// partialBad keys some counters and forgets the rest.
func partialBad(tok int) report {
	return report{Name: "bad", Tokens: tok} // want `report literal sets some counting fields but omits Steps, Seconds, ModelCalls`
}

// partialPtrBad does the same through a pointer literal.
func partialPtrBad(steps int) *report {
	return &report{Steps: steps, ModelCalls: 1} // want `report literal sets some counting fields but omits Tokens, Seconds`
}

// partialOK declares the omission on purpose.
func partialOK(tok int) report {
	//llmqlint:partial
	return report{Name: "delta", Tokens: tok}
}

// unannotated types are free to be sloppy.
func sloppy(tok int) plain {
	return plain{Tokens: tok}
}
