package accounting_test

import (
	"testing"

	"repro/internal/lint/accounting"
	"repro/internal/lint/analysistest"
)

func TestAccounting(t *testing.T) {
	analysistest.Run(t, "testdata", accounting.Analyzer, "accounting")
}
