// Package accounting guards the serving pipeline's conservation laws at
// their weakest point: partially keyed composite literals. BatchResult,
// StageResult, and their kin flow through merges (backend.Sharded sums
// shards), attributions (the runtime copies batch metrics into member
// results), and the /v1/metrics endpoint; a constructor that keys some
// counting fields but silently omits another ships a zero that corrupts
// fleet accounting without failing any functional test.
//
// The rule: for a type annotated `//llmqlint:accounting` (on its type
// declaration) — or registered in knownTypes for cross-package use, since
// this suite has no fact export — a keyed composite literal that sets AT
// LEAST ONE counting field must set ALL counting fields. Counting fields are
// the fields of basic numeric type (ints, floats). Two idioms stay legal:
//
//	merged := BatchResult{}            // all-zero accumulator: sets nothing
//	BatchResult{Metrics: m,
//	    ModelCalls: n}                 // complete: every counter keyed
//
// and an intentionally partial literal can say so with //llmqlint:partial on
// the literal's first line. Unkeyed (positional) literals are already
// exhaustive by construction and are skipped.
package accounting

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the accounting pass.
var Analyzer = &analysis.Analyzer{
	Name: "accounting",
	Doc: "keyed composite literals of //llmqlint:accounting types must set " +
		"every numeric counting field or none (accumulator start); annotate " +
		"deliberate exceptions //llmqlint:partial",
	Run: run,
}

// knownTypes registers accounting types by qualified name for literals
// built OUTSIDE the defining package: the mini framework has no cross-
// package fact propagation, so the canonical result types are listed here
// (each also carries the in-source annotation for readers).
var knownTypes = map[string]bool{
	"repro/internal/backend.BatchResult":      true,
	"repro/internal/backend.ShardStats":       true,
	"repro/internal/backend.RecordedBatch":    true,
	"repro/internal/backend.WireResult":       true,
	"repro/internal/backend.RemoteStats":      true,
	"repro/internal/cluster.WorkerMetrics":    true,
	"repro/internal/cluster.Metrics":          true,
	"repro/internal/faults.Stats":             true,
	"repro/internal/server.WorkerStats":       true,
	"repro/internal/server.WorkerClientStats": true,
	"repro/internal/query.StageResult":        true,
	"repro/internal/llmsim.Metrics":           true,
	"repro/internal/kvcache.Stats":            true,
	"repro/internal/runtime.ClientMetrics":    true,
	"repro/internal/runtime.WaitHistogram":    true,
	"repro/internal/obs.SpanTree":             true,
	"repro/internal/obs.StageObservation":     true,
	"repro/internal/obs.StageRollup":          true,
}

func run(pass *analysis.Pass) error {
	local := annotatedLocalTypes(pass)
	for _, file := range pass.Files {
		dirs := analysis.DirectivesFor(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil || !isAccounting(named, local) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			checkLiteral(pass, lit, named, st, dirs)
			return true
		})
	}
	return nil
}

// checkLiteral applies the all-or-none counting rule to one keyed literal.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit, named *types.Named, st *types.Struct, dirs *analysis.Directives) {
	if len(lit.Elts) == 0 {
		return // zero-value accumulator start
	}
	keyed := make(map[string]bool)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: exhaustive by construction
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			keyed[id.Name] = true
		}
	}
	counters := countingFields(st)
	any := false
	for _, c := range counters {
		if keyed[c] {
			any = true
			break
		}
	}
	if !any {
		return // literal touches no counters: not a constructor of accounting state
	}
	if dirs.Has(lit.Pos(), "partial") {
		return
	}
	var missing []string
	for _, c := range counters {
		if !keyed[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(lit.Pos(),
			"%s literal sets some counting fields but omits %s: set every counter (zero is fine, but say so) or annotate //llmqlint:partial",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// countingFields lists st's fields of basic numeric type, in declaration
// order.
func countingFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		if b.Info()&(types.IsInteger|types.IsFloat) != 0 {
			out = append(out, f.Name())
		}
	}
	return out
}

// annotatedLocalTypes collects types in this package whose declaration
// carries //llmqlint:accounting.
func annotatedLocalTypes(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				text := analysis.CommentText(gd.Doc, ts.Doc, ts.Comment)
				if !strings.Contains(text, "llmqlint:accounting") {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func isAccounting(named *types.Named, local map[types.Object]bool) bool {
	obj := named.Obj()
	if obj == nil {
		return false
	}
	if local[obj] {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	return knownTypes[obj.Pkg().Path()+"."+obj.Name()]
}

func namedOf(t types.Type) *types.Named {
	switch u := t.(type) {
	case *types.Named:
		return u
	case *types.Pointer:
		return namedOf(u.Elem())
	}
	return nil
}
