// Package ctxflow is the ctxflow analyzer's fixture: a miniature of the
// runtime's context plumbing with one of every violation and one of every
// sanctioned pattern.
package ctxflow

import "context"

// bad detaches from the caller's context with no annotation.
func bad() context.Context {
	return context.Background() // want `context\.Background in library code`
}

// badTODO leaves a TODO context in library code.
func badTODO() context.Context {
	return context.TODO() // want `context\.TODO in library code`
}

// Run is a documented no-cancellation convenience wrapper; the directive
// sanctions its detachment point.
func Run() error {
	//llmqlint:detached -- convenience wrapper, documented as non-cancelable
	return RunContext(context.Background())
}

// RunContext threads ctx properly.
func RunContext(ctx context.Context) error {
	return ctx.Err()
}

// badOrder takes its context second.
func badOrder(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// goodOrder takes its context first.
func goodOrder(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Runner's hook field must also put ctx first.
type Runner struct {
	Good func(ctx context.Context, q string) error
	Bad  func(q string, ctx context.Context) error // want `context\.Context must be the first parameter`
}

// Backend is an interface whose methods follow the same rule.
type Backend interface {
	Run(ctx context.Context, q string) error
	RunBad(q string, ctx context.Context) error // want `context\.Context must be the first parameter`
}

// inLiteral checks function literals too.
var inLiteral = func(n int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = n
	return ctx.Err()
}
