// Package ctxflow enforces the repo's context-threading contract:
//
//  1. context.Background() and context.TODO() are banned in library code.
//     Since PR 4 every layer threads a caller's context end to end — a
//     Background() deep in the stack silently detaches work from
//     cancellation, which is exactly how a canceled statement used to
//     poison shared batches. Intentional detachment points (the batcher's
//     coalesced run, the documented no-cancellation convenience wrappers)
//     carry a `//llmqlint:detached` directive on or above the call line.
//     Package main (cmd/, examples/) is exempt: a process entry point is
//     where a root context legitimately begins.
//
//  2. A context.Context parameter must come first (after the receiver), in
//     every function, method, function literal, interface method, and
//     func-typed field — the standard library convention the whole API
//     follows (RunBatch(ctx, spec), ExecContext(ctx, ...), StageRunner).
package ctxflow

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "ban context.Background/TODO in library code (annotate intentional " +
		"detachment points //llmqlint:detached) and require context.Context " +
		"to be the first parameter",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		dirs := analysis.DirectivesFor(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if isMain {
					return true
				}
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
					return true
				}
				if !analysis.IsPkgIdent(pass.TypesInfo, sel.X, "context") {
					return true
				}
				if dirs.Has(node.Pos(), "detached") {
					return true
				}
				pass.Reportf(node.Pos(),
					"context.%s in library code: thread the caller's context, or mark a deliberate detachment point with //llmqlint:detached",
					sel.Sel.Name)
			case *ast.FuncType:
				checkCtxFirst(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkCtxFirst reports a context.Context parameter that is not the first
// parameter of ft.
func checkCtxFirst(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		// A field may declare several names (a, b T) or none (plain type).
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(pass, field.Type) && index > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			return
		}
		index += width
	}
}

func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	return analysis.ContainsNamed(tv.Type, "context", "Context")
}
