package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow")
}
