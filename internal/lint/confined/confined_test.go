package confined_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/confined"
)

func TestConfined(t *testing.T) {
	analysistest.Run(t, "testdata", confined.Analyzer, "confined")
}
