// Package confined is the confined analyzer's fixture: engine and cache
// values escaping their batch in every way the rule forbids, plus the
// sanctioned local-variable pattern.
package confined

import (
	"repro/internal/kvcache"
	"repro/internal/llmsim"
)

// holder stashes an engine in long-lived state.
type holder struct {
	eng *llmsim.Engine // want `struct field holds repro/internal/llmsim\.Engine`
	n   int
}

// poolish hides the engines one level down in a container.
type poolish struct {
	idle map[string][]*llmsim.Engine // want `struct field holds repro/internal/llmsim\.Engine`
}

// cacheHolder stashes the KV cache instead.
type cacheHolder struct {
	kv *kvcache.Cache // want `struct field holds repro/internal/kvcache\.Cache`
}

// leakedEngine is package-level engine state.
var leakedEngine *llmsim.Engine // want `package-level variable holds repro/internal/llmsim\.Engine`

// use keeps an engine confined to one call frame: the sanctioned pattern.
func use(cfg llmsim.Config, reqs []*llmsim.Request) (llmsim.Metrics, error) {
	eng := llmsim.New(cfg)
	return eng.Run(reqs)
}

// escapeCapture lets a goroutine capture the batch's engine.
func escapeCapture(cfg llmsim.Config, reqs []*llmsim.Request) {
	eng := llmsim.New(cfg)
	go func() {
		_, _ = eng.Run(reqs) // want `repro/internal/llmsim\.Engine captured by a goroutine`
	}()
}

// escapeArg hands the engine to a goroutine as an argument.
func escapeArg(cfg llmsim.Config) {
	eng := llmsim.New(cfg)
	go drain(eng) // want `repro/internal/llmsim\.Engine passed to a goroutine`
}

func drain(eng *llmsim.Engine) { _ = eng }
