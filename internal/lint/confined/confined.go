// Package confined enforces the engine-confinement rule the backend seam is
// built on: *llmsim.Engine and *kvcache.Cache are single-threaded (the KV
// trie documents it, and the conformance suite probes it dynamically), so
// outside internal/backend — the one layer allowed to own long-lived engine
// state, behind its pool locks — no package may
//
//   - declare a struct field holding an engine or cache (that is long-lived
//     state waiting for a second goroutine),
//   - declare a package-level variable holding one, or
//   - capture one in a goroutine (`go func() { ... eng ... }()`) or pass one
//     as an argument in a `go` call.
//
// Locals are fine: "one engine per batch, confined to the run" is exactly a
// local variable's lifetime. The defining packages (internal/llmsim,
// internal/kvcache) are exempt, as are this package's own fixtures for other
// types named Engine/Cache — matching is by fully qualified type identity,
// through pointers, slices, maps, arrays, and channels.
package confined

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the confined pass.
var Analyzer = &analysis.Analyzer{
	Name: "confined",
	Doc: "*llmsim.Engine and *kvcache.Cache must stay confined: no struct " +
		"fields, package variables, or goroutine captures outside internal/backend",
	Run: run,
}

// confinedTypes lists the single-goroutine types, by defining package path
// and type name.
var confinedTypes = [][2]string{
	{"repro/internal/llmsim", "Engine"},
	{"repro/internal/kvcache", "Cache"},
}

// exemptPkgs may own confined values: the serving seam itself and the
// defining packages.
var exemptPkgs = map[string]bool{
	"repro/internal/backend": true,
	"repro/internal/llmsim":  true,
	"repro/internal/kvcache": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || exemptPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.StructType:
				for _, f := range node.Fields.List {
					if name, bad := confinedExpr(pass, f.Type); bad {
						pass.Reportf(f.Pos(),
							"struct field holds %s outside internal/backend: engines and KV caches are single-goroutine and must stay confined to one batch or pool lease",
							name)
					}
				}
			case *ast.GenDecl:
				// Package-level vars only; locals are the confined pattern.
				if node.Tok.String() != "var" || !isPackageLevel(file, node) {
					return true
				}
				for _, spec := range node.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, vn := range vs.Names {
						obj := pass.TypesInfo.Defs[vn]
						if obj == nil {
							continue
						}
						if name, bad := confinedType(obj.Type()); bad {
							pass.Reportf(vn.Pos(),
								"package-level variable holds %s outside internal/backend", name)
						}
					}
				}
			case *ast.GoStmt:
				checkGo(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkGo flags confined values escaping into a goroutine, either as call
// arguments or as free variables of a function literal.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if name, bad := confinedExpr(pass, arg); bad {
			pass.Reportf(arg.Pos(), "%s passed to a goroutine: engines and KV caches are single-goroutine", name)
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// A free variable of the literal is one whose declaration lies outside
	// the literal's body.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.Pos() == 0 {
			return true
		}
		if lit.Body.Pos() <= obj.Pos() && obj.Pos() <= lit.Body.End() {
			return true // declared inside the goroutine: confined to it
		}
		if name, bad := confinedType(obj.Type()); bad {
			pass.Reportf(id.Pos(), "%s captured by a goroutine: engines and KV caches are single-goroutine", name)
		}
		return true
	})
}

func confinedExpr(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	return confinedType(tv.Type)
}

func confinedType(t types.Type) (string, bool) {
	for _, ct := range confinedTypes {
		if analysis.ContainsNamed(t, ct[0], ct[1]) {
			return ct[0] + "." + ct[1], true
		}
	}
	return "", false
}

// isPackageLevel reports whether decl is a top-level declaration of file.
func isPackageLevel(file *ast.File, decl *ast.GenDecl) bool {
	for _, d := range file.Decls {
		if d == decl {
			return true
		}
	}
	return false
}
