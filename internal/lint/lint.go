// Package lint registers the repo's invariant analyzers for the llmqlint
// driver. Each analyzer encodes one contract the serving runtime depends on
// but the compiler cannot check; internal/lint/README.md documents them and
// the annotations that scope them.
package lint

import (
	"repro/internal/lint/accounting"
	"repro/internal/lint/analysis"
	"repro/internal/lint/confined"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/errwrap"
	"repro/internal/lint/guardedby"
)

// Analyzers is the full suite, in the order diagnostics are grouped.
var Analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	guardedby.Analyzer,
	confined.Analyzer,
	accounting.Analyzer,
	errwrap.Analyzer,
}
