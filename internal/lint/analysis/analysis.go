// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: just enough surface — Analyzer,
// Pass, Diagnostic — for this repo's invariant suite (internal/lint/...) to
// be written in the standard go/analysis shape without the x/tools
// dependency, which the build environment does not carry. If the module ever
// grows a vendored x/tools, the analyzers port by changing one import line.
//
// The deliberate differences from x/tools are documented where they matter:
// there is no Facts mechanism (cross-package type annotations are registered
// by qualified name instead — see internal/lint/accounting), no SSA, and no
// analyzer-to-analyzer Requires graph; every analyzer works from the parsed
// files and the go/types information the loader provides.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph description `llmqlint -help` prints.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass holds one package's parsed and type-checked state for an analyzer
// run. Unlike x/tools there is no ResultOf/Facts plumbing.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic; the driver collects and sorts them.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// --- llmqlint directives --------------------------------------------------
//
// Annotations are ordinary comments: `//llmqlint:<verb>` optionally followed
// by arguments (`//llmqlint:holds mu`). A directive suppresses or scopes a
// check for the line it sits on or the line directly below it, matching how
// //nolint and //go:... directives attach in practice.

// directiveRe matches one llmqlint directive comment line.
var directiveRe = regexp.MustCompile(`^//\s*llmqlint:([a-z]+)(?:\s+(.*))?$`)

// Directives indexes every llmqlint directive in file by the source line it
// governs: the directive's own line and the line below it (so a comment
// above a statement covers the statement).
type Directives struct {
	fset  *token.FileSet
	lines map[string][]string // "file:line" -> verbs ("detached", "holds mu")
}

// DirectivesFor scans file's comments for llmqlint directives.
func DirectivesFor(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[string][]string)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(strings.TrimSpace(c.Text))
			if m == nil {
				continue
			}
			verb := m[1]
			if m[2] != "" {
				verb += " " + strings.TrimSpace(m[2])
			}
			pos := fset.Position(c.Pos())
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := lineKey(pos.Filename, line)
				d.lines[key] = append(d.lines[key], verb)
			}
		}
	}
	return d
}

// Has reports whether a directive with the given verb (exact match on the
// verb word, arguments ignored) governs pos's line.
func (d *Directives) Has(pos token.Pos, verb string) bool {
	p := d.fset.Position(pos)
	for _, v := range d.lines[lineKey(p.Filename, p.Line)] {
		if v == verb || strings.HasPrefix(v, verb+" ") {
			return true
		}
	}
	return false
}

// Args returns the argument lists of every directive with the given verb
// governing pos's line ("holds mu" → ["mu"]).
func (d *Directives) Args(pos token.Pos, verb string) []string {
	p := d.fset.Position(pos)
	var out []string
	for _, v := range d.lines[lineKey(p.Filename, p.Line)] {
		if rest, ok := strings.CutPrefix(v, verb+" "); ok {
			out = append(out, rest)
		}
	}
	return out
}

// CommentText returns the comment text (doc and trailing line comments)
// attached to a node via the file's comment groups, for annotation matching
// such as `// guarded by mu`. It relies on parser.ParseComments having
// populated the field comments directly (ast.Field.Doc / ast.Field.Comment),
// so callers pass those; this helper just flattens a group to text.
func CommentText(groups ...*ast.CommentGroup) string {
	var sb strings.Builder
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			sb.WriteString(c.Text)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// IsPkgIdent reports whether expr is an identifier naming the import of
// pkgPath (e.g. the `context` in `context.Background`).
func IsPkgIdent(info *types.Info, expr ast.Expr, pkgPath string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// ContainsNamed unwraps pointers, slices, arrays, maps, and channels around
// t and reports whether any leaf is the named type pkgPath.name, so a
// `map[string][]*llmsim.Engine` is still caught. It does not descend into
// OTHER named types' structure: a struct that embeds a confined type is that
// struct's own declaration problem, flagged where the field is declared.
func ContainsNamed(t types.Type, pkgPath, name string) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.(type) {
		case *types.Named:
			obj := u.Obj()
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name {
				return true
			}
			return false // do not descend into other named types' structure
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// ExprString renders a simple expression chain (identifiers, selectors,
// parens, derefs) as source text for syntactic comparisons such as matching
// `rt.cache.mu.Lock()` against an access to `rt.cache.entries`. Expressions
// outside that shape render as "" and never match.
func ExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := ExprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return ExprString(x.X)
	case *ast.StarExpr:
		return ExprString(x.X)
	}
	return ""
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
