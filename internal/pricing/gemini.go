package pricing

import (
	"fmt"

	"repro/internal/tokenizer"
)

// Gemini is the third provider model the paper cites (context caching,
// ai.google.dev/gemini-api/docs/caching): the user explicitly creates a
// cache object over a prompt prefix, pays a one-time write at the base input
// rate, a storage rent per token-hour while the cache lives, and a
// discounted rate for cached tokens on every request that references it.
const Gemini Provider = "gemini"

// GeminiFlash15 approximates Gemini 1.5 Flash context-caching prices:
// $0.075/M base input, $0.01875/M cached input (75% discount), $1.00/M
// tokens per hour of cache storage, $0.30/M output, 32k-token cache minimum
// for 1.5 Flash... the paper's setting needs only the relative structure, so
// we use the documented 1,024-token floor of the later Flash models to keep
// the three providers comparable.
var GeminiFlash15 = Book{
	Name: "gemini-1.5-flash", Provider: Gemini,
	InputPerM: 0.075, CachedPerM: 0.01875, OutputPerM: 0.30,
	MinPrefix:     1024,
	StoragePerMH:  1.00,
	CacheLifetime: 1.0, // hold each cache for one hour (default TTL)
}

// simulateGemini models explicit context caching with a single cache object
// per distinct MinPrefix-token prefix (mirroring the Anthropic breakpoint
// discipline, which is how a batch analytics job would use it): the first
// request writes the cache at the base rate; subsequent identical prefixes
// read at the cached rate. Storage rent accrues per distinct cache for the
// configured lifetime and is added by Book.Cost via Usage.StorageTokenHours.
func simulateGemini(b Book, prompts [][]tokenizer.Token, u *Usage) {
	seen := make(map[uint64]bool)
	for _, p := range prompts {
		if len(p) < b.MinPrefix {
			continue
		}
		h := hashTokens(p[:b.MinPrefix])
		if seen[h] {
			u.Cached += int64(b.MinPrefix)
		} else {
			seen[h] = true
			// The write bills at the base input rate (no premium), so it
			// stays in the "fresh" bucket; only storage rent is extra.
			u.StorageTokenHours += float64(b.MinPrefix) * b.CacheLifetime
		}
	}
}

// GeminiBreakEvenReads reports how many cache reads amortize one cache's
// storage rent: the rent per token must be recovered by the per-read
// discount (base − cached). Useful for deciding whether caching a prefix is
// worth it at a given reuse factor.
func GeminiBreakEvenReads(b Book) (float64, error) {
	if b.Provider != Gemini {
		return 0, fmt.Errorf("pricing: %s is not a Gemini book", b.Name)
	}
	discount := b.InputPerM - b.CachedPerM
	if discount <= 0 {
		return 0, fmt.Errorf("pricing: %s has no cached discount", b.Name)
	}
	rent := b.StoragePerMH * b.CacheLifetime
	return rent / discount, nil
}
