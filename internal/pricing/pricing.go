// Package pricing implements the OpenAI and Anthropic prompt-caching price
// models the paper evaluates (Sec. 6.3): OpenAI bills cached prompt tokens
// at a 50% discount with automatic prefix detection (minimum 1,024 tokens,
// 128-token granularity); Anthropic bills explicit cache writes at a 25%
// premium and cache reads at 10% of the base input rate, with a 1,024-token
// minimum cacheable prefix.
package pricing

import (
	"fmt"

	"repro/internal/tokenizer"
)

// Provider selects the caching semantics.
type Provider string

const (
	// OpenAI: automatic prefix caching, discounted cached tokens.
	OpenAI Provider = "openai"
	// Anthropic: explicit cache breakpoints, write premium + cheap reads.
	Anthropic Provider = "anthropic"
)

// Book is one model's price card (all rates in $ per million tokens).
type Book struct {
	Name     string
	Provider Provider
	// InputPerM is the base input rate; CachedPerM the rate for cached
	// prompt tokens (OpenAI's discount or Anthropic's cache-read rate);
	// WritePerM Anthropic's cache-write rate (unused for OpenAI);
	// OutputPerM the completion rate.
	InputPerM  float64
	CachedPerM float64
	WritePerM  float64
	OutputPerM float64
	// MinPrefix is the minimum cacheable prefix length; Granularity the
	// block size cached lengths are rounded down to (0 = exact).
	MinPrefix   int
	Granularity int
	// StoragePerMH is Gemini's cache-storage rent ($ per million tokens per
	// hour); CacheLifetime how long each cache object is held (hours).
	StoragePerMH  float64
	CacheLifetime float64
}

// GPT4oMini is the OpenAI card used in Table 3 ($0.15/M input, $0.075/M
// cached, $0.60/M output).
var GPT4oMini = Book{
	Name: "gpt-4o-mini", Provider: OpenAI,
	InputPerM: 0.15, CachedPerM: 0.075, OutputPerM: 0.60,
	MinPrefix: 1024, Granularity: 128,
}

// Claude35Sonnet is the Anthropic card used in Table 3 ($3/M input, $3.75/M
// cache write, $0.30/M cache read, $15/M output).
var Claude35Sonnet = Book{
	Name: "claude-3.5-sonnet", Provider: Anthropic,
	InputPerM: 3.00, CachedPerM: 0.30, WritePerM: 3.75, OutputPerM: 15.00,
	MinPrefix: 1024,
}

// Usage aggregates billable tokens over a workload.
type Usage struct {
	Requests int
	// Prompt counts all prompt tokens; Cached the subset billed at the
	// cached rate; Written the subset billed at the cache-write rate
	// (Anthropic only). Fresh = Prompt − Cached − Written bills at base.
	Prompt  int64
	Cached  int64
	Written int64
	Output  int64
	// StorageTokenHours accrues Gemini cache rent (token·hours).
	StorageTokenHours float64
}

// HitRate is Cached / Prompt.
func (u Usage) HitRate() float64 {
	if u.Prompt == 0 {
		return 0
	}
	return float64(u.Cached) / float64(u.Prompt)
}

// Cost prices a usage aggregate under the book.
func (b Book) Cost(u Usage) float64 {
	fresh := u.Prompt - u.Cached - u.Written
	return float64(fresh)*b.InputPerM/1e6 +
		float64(u.Cached)*b.CachedPerM/1e6 +
		float64(u.Written)*b.WritePerM/1e6 +
		float64(u.Output)*b.OutputPerM/1e6 +
		u.StorageTokenHours*b.StoragePerMH/1e6
}

// Simulate replays a request sequence against the provider-side cache and
// returns the billable usage. prompts[i] is the token sequence of request i;
// outTokens[i] its completion length.
func Simulate(b Book, prompts [][]tokenizer.Token, outTokens []int) (Usage, error) {
	if len(prompts) != len(outTokens) {
		return Usage{}, fmt.Errorf("pricing: %d prompts vs %d output lengths", len(prompts), len(outTokens))
	}
	var u Usage
	u.Requests = len(prompts)
	switch b.Provider {
	case OpenAI:
		simulateOpenAI(b, prompts, &u)
	case Anthropic:
		simulateAnthropic(b, prompts, &u)
	case Gemini:
		simulateGemini(b, prompts, &u)
	default:
		return Usage{}, fmt.Errorf("pricing: unknown provider %q", b.Provider)
	}
	for i, p := range prompts {
		u.Prompt += int64(len(p))
		u.Output += int64(outTokens[i])
	}
	return u, nil
}

// simulateOpenAI models automatic prefix caching: the longest previously
// seen prefix counts as cached when it reaches MinPrefix, rounded down to
// Granularity. Every request's own prefixes become cacheable afterwards.
// Prefixes are tracked as chained hashes of Granularity-sized blocks, the
// same structure providers use, so memory stays proportional to distinct
// blocks rather than tokens.
func simulateOpenAI(b Book, prompts [][]tokenizer.Token, u *Usage) {
	gran := b.Granularity
	if gran <= 0 {
		gran = 1
	}
	seen := make(map[uint64]bool)
	for _, p := range prompts {
		hs := blockHashes(p, gran)
		matched := 0
		for _, h := range hs {
			if !seen[h] {
				break
			}
			matched += gran
		}
		if matched < b.MinPrefix {
			matched = 0
		}
		u.Cached += int64(matched)
		for _, h := range hs {
			seen[h] = true
		}
	}
}

// blockHashes chains a hash over gran-sized blocks so each block's identity
// covers its whole prefix.
func blockHashes(p []tokenizer.Token, gran int) []uint64 {
	n := len(p) / gran
	out := make([]uint64, n)
	var h uint64 = 1469598103934665603
	for b := 0; b < n; b++ {
		for _, t := range p[b*gran : (b+1)*gran] {
			h ^= uint64(uint32(t))
			h *= 1099511628211
		}
		out[b] = h
	}
	return out
}

// simulateAnthropic models one explicit cache breakpoint at MinPrefix tokens
// (the paper's conservative single-breakpoint setup): the first request with
// a given 1,024-token prefix pays the write premium on it; subsequent
// requests with the identical prefix read it at the cached rate. Prompts
// shorter than the minimum are not cached at all.
func simulateAnthropic(b Book, prompts [][]tokenizer.Token, u *Usage) {
	seen := make(map[uint64]bool)
	for _, p := range prompts {
		if len(p) < b.MinPrefix {
			continue
		}
		h := hashTokens(p[:b.MinPrefix])
		if seen[h] {
			u.Cached += int64(b.MinPrefix)
		} else {
			seen[h] = true
			u.Written += int64(b.MinPrefix)
		}
	}
}

// EstimatedSavings computes Table 4's arithmetic: given the measured prefix
// hit rates of the original and GGR orderings, the relative cost reduction
// of GGR's input bill under the book's rates. OpenAI bills hits at the
// cached discount; Anthropic bills hits as reads and misses as writes (the
// steady state where every miss writes a new prefix).
func EstimatedSavings(b Book, hitOriginal, hitGGR float64) float64 {
	cost := func(h float64) float64 {
		switch b.Provider {
		case Anthropic:
			return (1-h)*(b.WritePerM/b.InputPerM) + h*(b.CachedPerM/b.InputPerM)
		default:
			return (1 - h) + h*(b.CachedPerM/b.InputPerM)
		}
	}
	co, cg := cost(hitOriginal), cost(hitGGR)
	if co <= 0 {
		return 0
	}
	return 1 - cg/co
}

func hashTokens(p []tokenizer.Token) uint64 {
	var h uint64 = 1469598103934665603
	for _, t := range p {
		h ^= uint64(uint32(t))
		h *= 1099511628211
	}
	return h
}
