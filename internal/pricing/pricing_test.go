package pricing

import (
	"math"
	"testing"

	"repro/internal/tokenizer"
)

func seq(start, n int) []tokenizer.Token {
	out := make([]tokenizer.Token, n)
	for i := range out {
		out[i] = tokenizer.Token(start + i)
	}
	return out
}

func TestCostArithmetic(t *testing.T) {
	u := Usage{Prompt: 2_000_000, Cached: 1_000_000, Output: 100_000}
	got := GPT4oMini.Cost(u)
	// 1M fresh × 0.15 + 1M cached × 0.075 + 0.1M out × 0.60 = 0.285
	if math.Abs(got-0.285) > 1e-9 {
		t.Errorf("cost = %f, want 0.285", got)
	}
	ua := Usage{Prompt: 2_000_000, Cached: 500_000, Written: 500_000, Output: 0}
	gota := Claude35Sonnet.Cost(ua)
	// 1M fresh × 3 + 0.5M read × 0.30 + 0.5M write × 3.75 = 5.025
	if math.Abs(gota-5.025) > 1e-9 {
		t.Errorf("anthropic cost = %f, want 5.025", gota)
	}
}

func TestOpenAIMinimumPrefix(t *testing.T) {
	// Identical 512-token prompts: below the 1,024 minimum, nothing caches —
	// the paper's Table 3 observation that the original FEVER ordering gets
	// 0% cached despite a shared system prompt.
	prompts := [][]tokenizer.Token{seq(0, 512), seq(0, 512), seq(0, 512)}
	u, err := Simulate(GPT4oMini, prompts, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cached != 0 {
		t.Errorf("cached %d tokens below the minimum", u.Cached)
	}
}

func TestOpenAICachingAndGranularity(t *testing.T) {
	// 1,500-token identical prompts: second request caches ⌊1500/128⌋×128 =
	// 1408 tokens.
	prompts := [][]tokenizer.Token{seq(0, 1500), seq(0, 1500)}
	u, err := Simulate(GPT4oMini, prompts, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cached != 1408 {
		t.Errorf("cached = %d, want 1408", u.Cached)
	}
	if u.Prompt != 3000 {
		t.Errorf("prompt = %d", u.Prompt)
	}
}

func TestOpenAIPartialPrefix(t *testing.T) {
	a := seq(0, 2048)
	b := append(seq(0, 1024), seq(50_000, 1024)...) // shares first 1024
	u, err := Simulate(GPT4oMini, [][]tokenizer.Token{a, b}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cached != 1024 {
		t.Errorf("cached = %d, want 1024", u.Cached)
	}
}

func TestAnthropicWriteThenRead(t *testing.T) {
	p := seq(0, 1500)
	u, err := Simulate(Claude35Sonnet, [][]tokenizer.Token{p, p, p}, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.Written != 1024 {
		t.Errorf("written = %d, want one 1024 write", u.Written)
	}
	if u.Cached != 2048 {
		t.Errorf("cached = %d, want two 1024 reads", u.Cached)
	}
}

func TestAnthropicShortPromptsUncached(t *testing.T) {
	p := seq(0, 800)
	u, err := Simulate(Claude35Sonnet, [][]tokenizer.Token{p, p}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Written != 0 || u.Cached != 0 {
		t.Errorf("short prompts touched the cache: %+v", u)
	}
}

func TestAnthropicDistinctPrefixesAllWrite(t *testing.T) {
	prompts := [][]tokenizer.Token{seq(0, 1100), seq(10_000, 1100), seq(20_000, 1100)}
	u, err := Simulate(Claude35Sonnet, prompts, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Written != 3*1024 || u.Cached != 0 {
		t.Errorf("usage = %+v", u)
	}
	// Writing costs more than not caching at all — the paper's reason for
	// conservative breakpoints.
	noCache := Claude35Sonnet.Cost(Usage{Prompt: u.Prompt, Output: u.Output})
	if Claude35Sonnet.Cost(u) <= noCache {
		t.Error("all-miss cache writing should cost more than no caching")
	}
}

func TestSharedOrderingCostsLess(t *testing.T) {
	// Grouped identical prompts vs interleaved distinct ones.
	shared := make([][]tokenizer.Token, 10)
	distinct := make([][]tokenizer.Token, 10)
	outs := make([]int, 10)
	for i := range shared {
		shared[i] = seq(0, 2000)
		distinct[i] = seq(i*100_000, 2000)
		outs[i] = 3
	}
	for _, book := range []Book{GPT4oMini, Claude35Sonnet} {
		us, err := Simulate(book, shared, outs)
		if err != nil {
			t.Fatal(err)
		}
		ud, err := Simulate(book, distinct, outs)
		if err != nil {
			t.Fatal(err)
		}
		if book.Cost(us) >= book.Cost(ud) {
			t.Errorf("%s: shared prompts (%.4f) not cheaper than distinct (%.4f)",
				book.Name, book.Cost(us), book.Cost(ud))
		}
	}
}

func TestEstimatedSavingsMatchesTable4Shape(t *testing.T) {
	// Paper Table 4: Movies PHR 34.6 → 85.7 yields ~31% OpenAI and ~73%
	// Anthropic savings. Allow a few points of slack — it is an estimate.
	oa := EstimatedSavings(GPT4oMini, 0.346, 0.857)
	if math.Abs(oa-0.31) > 0.03 {
		t.Errorf("OpenAI Movies savings = %.3f, want ≈ 0.31", oa)
	}
	an := EstimatedSavings(Claude35Sonnet, 0.346, 0.857)
	if math.Abs(an-0.73) > 0.05 {
		t.Errorf("Anthropic Movies savings = %.3f, want ≈ 0.73", an)
	}
	// BIRD: 10.4 → 84.8 gives ~39% OpenAI.
	if got := EstimatedSavings(GPT4oMini, 0.104, 0.848); math.Abs(got-0.39) > 0.03 {
		t.Errorf("OpenAI BIRD savings = %.3f, want ≈ 0.39", got)
	}
}

func TestEstimatedSavingsDegenerate(t *testing.T) {
	if s := EstimatedSavings(GPT4oMini, 0.5, 0.5); s != 0 {
		t.Errorf("equal hit rates should save 0, got %f", s)
	}
	if s := EstimatedSavings(GPT4oMini, 0.2, 0.8); s <= 0 {
		t.Errorf("higher hit rate should save, got %f", s)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(GPT4oMini, [][]tokenizer.Token{seq(0, 10)}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := Book{Provider: "mystery"}
	if _, err := Simulate(bad, nil, nil); err == nil {
		t.Error("unknown provider accepted")
	}
}

func TestHitRate(t *testing.T) {
	if (Usage{}).HitRate() != 0 {
		t.Error("empty usage hit rate")
	}
	u := Usage{Prompt: 100, Cached: 25}
	if u.HitRate() != 0.25 {
		t.Errorf("hit rate = %f", u.HitRate())
	}
}
