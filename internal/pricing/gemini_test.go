package pricing

import (
	"math"
	"testing"

	"repro/internal/tokenizer"
)

func TestGeminiWriteThenRead(t *testing.T) {
	p := seq(0, 1500)
	u, err := Simulate(GeminiFlash15, [][]tokenizer.Token{p, p, p}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// One cache object created: rent for 1024 token-hours; two reads.
	if u.StorageTokenHours != 1024 {
		t.Errorf("storage token-hours = %f, want 1024", u.StorageTokenHours)
	}
	if u.Cached != 2048 {
		t.Errorf("cached = %d, want 2048", u.Cached)
	}
	if u.Written != 0 {
		t.Errorf("gemini writes bill at base rate, Written should stay 0, got %d", u.Written)
	}
}

func TestGeminiShortPromptsSkipCache(t *testing.T) {
	p := seq(0, 500)
	u, err := Simulate(GeminiFlash15, [][]tokenizer.Token{p, p}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cached != 0 || u.StorageTokenHours != 0 {
		t.Errorf("short prompts touched the cache: %+v", u)
	}
}

func TestGeminiStorageRentInCost(t *testing.T) {
	u := Usage{Prompt: 1_000_000, StorageTokenHours: 1_000_000}
	withRent := GeminiFlash15.Cost(u)
	u.StorageTokenHours = 0
	without := GeminiFlash15.Cost(u)
	if diff := withRent - without; math.Abs(diff-1.00) > 1e-9 {
		t.Errorf("1M token-hours of rent cost %f, want 1.00", diff)
	}
}

func TestGeminiCachingPaysOffWithReuse(t *testing.T) {
	// Heavy reuse: caching must be cheaper than not caching.
	shared := make([][]tokenizer.Token, 50)
	outs := make([]int, 50)
	for i := range shared {
		shared[i] = seq(0, 2000)
		outs[i] = 2
	}
	u, err := Simulate(GeminiFlash15, shared, outs)
	if err != nil {
		t.Fatal(err)
	}
	noCache := GeminiFlash15.Cost(Usage{Prompt: u.Prompt, Output: u.Output})
	if GeminiFlash15.Cost(u) >= noCache {
		t.Errorf("caching with 50x reuse cost %.4f, no caching %.4f", GeminiFlash15.Cost(u), noCache)
	}
}

func TestGeminiBreakEvenReads(t *testing.T) {
	n, err := GeminiBreakEvenReads(GeminiFlash15)
	if err != nil {
		t.Fatal(err)
	}
	// Rent $1.00/M·h for 1h vs discount $0.05625/M per read ⇒ ~17.8 reads.
	if math.Abs(n-1.00/0.05625) > 1e-6 {
		t.Errorf("break-even reads = %f", n)
	}
	if _, err := GeminiBreakEvenReads(GPT4oMini); err == nil {
		t.Error("non-Gemini book accepted")
	}
	broken := GeminiFlash15
	broken.CachedPerM = broken.InputPerM
	if _, err := GeminiBreakEvenReads(broken); err == nil {
		t.Error("zero-discount book accepted")
	}
}

func TestGeminiDistinctPrefixesAllRent(t *testing.T) {
	prompts := [][]tokenizer.Token{seq(0, 1100), seq(10_000, 1100)}
	u, err := Simulate(GeminiFlash15, prompts, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.StorageTokenHours != 2048 {
		t.Errorf("storage = %f, want two 1024-token caches", u.StorageTokenHours)
	}
	if u.Cached != 0 {
		t.Errorf("cached = %d", u.Cached)
	}
}
