// Package bootstrap implements the statistical bootstrapping used by the
// paper's accuracy study (Sec. 6.4): resampling rows with replacement to
// obtain a distribution of exact-match accuracy over 10,000 runs.
package bootstrap

import (
	"fmt"
	"math/rand"
	"sort"
)

// Result summarizes a bootstrap distribution.
type Result struct {
	Reps   int
	Mean   float64
	Median float64
	P5     float64
	P95    float64
}

// Mean of values resampled with replacement, repeated reps times.
// Deterministic for a given seed.
func Means(values []float64, reps int, seed int64) (Result, error) {
	if len(values) == 0 {
		return Result{}, fmt.Errorf("bootstrap: no values")
	}
	if reps <= 0 {
		return Result{}, fmt.Errorf("bootstrap: reps must be positive, got %d", reps)
	}
	r := rand.New(rand.NewSource(seed))
	n := len(values)
	stats := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += values[r.Intn(n)]
		}
		stats[rep] = sum / float64(n)
	}
	sort.Float64s(stats)
	var mean float64
	for _, s := range stats {
		mean += s
	}
	mean /= float64(reps)
	return Result{
		Reps:   reps,
		Mean:   mean,
		Median: percentile(stats, 0.50),
		P5:     percentile(stats, 0.05),
		P95:    percentile(stats, 0.95),
	}, nil
}

// Accuracy bootstraps the exact-match accuracy of a correctness vector.
func Accuracy(correct []bool, reps int, seed int64) (Result, error) {
	vals := make([]float64, len(correct))
	for i, c := range correct {
		if c {
			vals[i] = 1
		}
	}
	return Means(vals, reps, seed)
}

// percentile reads the p-quantile from a sorted slice (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
