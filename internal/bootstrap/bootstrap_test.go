package bootstrap

import (
	"math"
	"testing"
)

func TestMeansCentersOnSampleMean(t *testing.T) {
	vals := []float64{0, 1, 1, 1} // mean 0.75
	res, err := Means(vals, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-0.75) > 0.02 {
		t.Errorf("bootstrap mean %.3f, sample mean 0.75", res.Mean)
	}
	if math.Abs(res.Median-0.75) > 0.05 {
		t.Errorf("median %.3f", res.Median)
	}
	if !(res.P5 <= res.Median && res.Median <= res.P95) {
		t.Errorf("percentiles out of order: %+v", res)
	}
}

func TestConstantValuesHaveZeroWidth(t *testing.T) {
	res, err := Means([]float64{0.5, 0.5, 0.5}, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P5 != 0.5 || res.P95 != 0.5 {
		t.Errorf("constant input produced interval [%f, %f]", res.P5, res.P95)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	a, _ := Means(vals, 500, 42)
	b, _ := Means(vals, 500, 42)
	if a != b {
		t.Error("same seed, different result")
	}
	c, _ := Means(vals, 500, 43)
	if a == c {
		t.Error("different seeds produced identical distributions")
	}
}

func TestIntervalWidthShrinksWithN(t *testing.T) {
	small := make([]float64, 20)
	large := make([]float64, 2000)
	for i := range small {
		small[i] = float64(i % 2)
	}
	for i := range large {
		large[i] = float64(i % 2)
	}
	rs, _ := Means(small, 2000, 7)
	rl, _ := Means(large, 2000, 7)
	if (rl.P95 - rl.P5) >= (rs.P95 - rs.P5) {
		t.Errorf("CI width did not shrink: small %f, large %f",
			rs.P95-rs.P5, rl.P95-rl.P5)
	}
}

func TestAccuracy(t *testing.T) {
	correct := make([]bool, 100)
	for i := 0; i < 80; i++ {
		correct[i] = true
	}
	res, err := Accuracy(correct, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Median-0.8) > 0.05 {
		t.Errorf("accuracy median %.3f, want ≈ 0.8", res.Median)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Means(nil, 10, 1); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Means([]float64{1}, 0, 1); err == nil {
		t.Error("zero reps accepted")
	}
}
