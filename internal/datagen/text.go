// Package datagen synthesizes the paper's seven evaluation datasets
// (Table 1 / Appendix B). The originals are real corpora we cannot ship;
// the generators reproduce the properties the reordering algorithms and the
// KV cache actually interact with: row and field counts, value-length
// distributions (in tokens), per-column cardinalities, entity join structure
// (many reviews per movie/product/post/beer), functional dependencies, and
// topic-skewed sharing for the RAG corpora. DESIGN.md records the
// substitution rationale.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/tokenizer"
)

// Options configures every generator.
type Options struct {
	// Scale multiplies row counts (1.0 = the paper's dataset sizes). Entity
	// counts scale proportionally so rows-per-entity ratios are preserved.
	Scale float64
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// scaled applies the scale to a full-size count, with a floor of 1.
func (o Options) scaled(full int) int {
	n := int(float64(full) * o.scale())
	if n < 1 {
		n = 1
	}
	return n
}

// textGen produces deterministic pseudo-English text with a controllable
// token budget. A fixed syllable-composed vocabulary keeps the token/char
// ratio realistic without shipping a corpus.
type textGen struct {
	r       *rand.Rand
	vocab   []string
	tokCost []int // tokens contributed by " "+word
	zipf    *rand.Zipf
}

const vocabSize = 4096

func newTextGen(seed int64) *textGen {
	r := rand.New(rand.NewSource(seed))
	g := &textGen{r: r}
	g.vocab = make([]string, vocabSize)
	g.tokCost = make([]int, vocabSize)
	sylA := []string{"ba", "co", "di", "fen", "gra", "hol", "jin", "kel", "lor", "mun", "nar", "pel", "qui", "ros", "sta", "tur", "vel", "wex", "yor", "zan"}
	sylB := []string{"da", "ler", "min", "tor", "ven", "ska", "ri", "no", "bel", "chu", "dr", "ek", "fu", "gi", "ho", "ja"}
	sylC := []string{"", "", "", "s", "ing", "ed", "ly", "er", "tion", "ment"}
	for i := range g.vocab {
		w := sylA[r.Intn(len(sylA))] + sylB[r.Intn(len(sylB))]
		if r.Intn(2) == 0 {
			w += sylB[r.Intn(len(sylB))]
		}
		w += sylC[r.Intn(len(sylC))]
		g.vocab[i] = w
		g.tokCost[i] = tokenizer.Count(" " + w)
	}
	// Zipf-distributed word choice (s=1.1) mimics natural text frequency.
	g.zipf = rand.NewZipf(r, 1.1, 1.0, vocabSize-1)
	return g
}

// wordAt picks a vocabulary index with Zipf skew.
func (g *textGen) wordAt() int { return int(g.zipf.Uint64()) }

// Sentence produces text of approximately targetTokens tokens (within one
// word of the target) with simple punctuation.
func (g *textGen) sentence(targetTokens int) string {
	if targetTokens <= 0 {
		return ""
	}
	var sb strings.Builder
	tokens := 0
	sinceBreak := 0
	for tokens < targetTokens {
		i := g.wordAt()
		if sb.Len() == 0 {
			sb.WriteString(g.vocab[i])
			tokens += tokenizer.Count(g.vocab[i])
		} else {
			sb.WriteByte(' ')
			sb.WriteString(g.vocab[i])
			tokens += g.tokCost[i]
		}
		sinceBreak++
		if sinceBreak >= 9+g.r.Intn(6) && tokens < targetTokens-2 {
			sb.WriteByte('.')
			tokens++
			sinceBreak = 0
		}
	}
	sb.WriteByte('.')
	return sb.String()
}

// phrase produces nWords space-separated words (titles, names).
func (g *textGen) phrase(nWords int) string {
	parts := make([]string, nWords)
	for i := range parts {
		parts[i] = g.vocab[g.wordAt()]
	}
	return strings.Join(parts, " ")
}

// rarePhrase draws uniformly from the rare half of the vocabulary, avoiding
// the Zipf-common head that dominates running text.
func (g *textGen) rarePhrase(nWords int) string {
	parts := make([]string, nWords)
	for i := range parts {
		parts[i] = g.vocab[vocabSize/2+g.r.Intn(vocabSize/2)]
	}
	return strings.Join(parts, " ")
}

// title is phrase with initial capitals.
func (g *textGen) title(nWords int) string {
	parts := make([]string, nWords)
	for i := range parts {
		w := g.vocab[g.wordAt()]
		parts[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(parts, " ")
}

// slug produces an identifier-like token chain (URLs, ASINs).
func (g *textGen) slug(nWords int) string {
	parts := make([]string, nWords)
	for i := range parts {
		parts[i] = g.vocab[g.r.Intn(len(g.vocab))]
	}
	return strings.Join(parts, "-")
}

// pick returns a uniform element of a slice.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// zipfIndex draws an index in [0, n) with Zipf skew s over a dedicated
// sampler (callers cache the sampler; this helper builds cheap one-offs for
// small n).
func newZipf(r *rand.Rand, s float64, n int) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	return rand.NewZipf(r, s, 1.0, uint64(n-1))
}

// shuffled returns a random permutation of [0, n).
func shuffled(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// fmtRating renders a bounded numeric score like "17/20".
func fmtRating(r *rand.Rand, maxVal int) string {
	return fmt.Sprintf("%d/%d", 1+r.Intn(maxVal), maxVal)
}
