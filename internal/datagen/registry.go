package datagen

import (
	"fmt"
	"sort"
)

// RelationalNames lists the table datasets in the paper's presentation order.
var RelationalNames = []string{"Movies", "Products", "BIRD", "PDMX", "Beer"}

// RAGNames lists the retrieval datasets.
var RAGNames = []string{"FEVER", "SQuAD"}

var relationalBuilders = map[string]func(Options) *Relational{
	"Movies":   Movies,
	"Products": Products,
	"BIRD":     BIRD,
	"PDMX":     PDMX,
	"Beer":     Beer,
}

var ragBuilders = map[string]func(Options) *RAG{
	"FEVER": FEVER,
	"SQuAD": SQuAD,
}

// RelationalByName builds a table dataset by its paper name.
func RelationalByName(name string, opt Options) (*Relational, error) {
	b, ok := relationalBuilders[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown relational dataset %q (have %v)", name, RelationalNames)
	}
	return b(opt), nil
}

// RAGByName builds a retrieval dataset by its paper name.
func RAGByName(name string, opt Options) (*RAG, error) {
	b, ok := ragBuilders[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown RAG dataset %q (have %v)", name, RAGNames)
	}
	return b(opt), nil
}

// AllNames returns every dataset name, sorted.
func AllNames() []string {
	out := append(append([]string(nil), RelationalNames...), RAGNames...)
	sort.Strings(out)
	return out
}
