package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// pdmxColumns is the Appendix B field list (57 columns: wide, mostly short
// metadata with a few long text entries).
var pdmxColumns = []string{
	"artistname", "bestarrangement", "bestpath", "bestuniquearrangement",
	"composername", "complexity", "genre", "grooveconsistency",
	"hasannotations", "hascustomaudio", "hascustomvideo", "haslyrics",
	"hasmetadata", "haspaywall", "id", "isbestarrangement", "isbestpath",
	"isbestuniquearrangement", "isdraft", "isofficial", "isoriginal",
	"isuserpro", "isuserpublisher", "isuserstaff", "license", "licenseurl",
	"metadata", "nannotations", "ncomments", "nfavorites", "nlyrics",
	"notesperbar", "nnotes", "nratings", "ntracks", "ntokens", "nviews",
	"path", "pitchclassentropy", "postdate", "postid", "publisher", "rating",
	"scaleconsistency", "songlength", "songlengthbars", "songlengthbeats",
	"songlengthseconds", "songname", "subsetall", "subsetdeduplicated",
	"subsetrated", "subsetrateddeduplicated", "subtitle", "tags", "text",
	"title",
}

var pdmxLicenses = []struct{ name, url string }{
	{"CC-BY-4.0", "https://creativecommons.org/licenses/by/4.0/"},
	{"CC-BY-SA-4.0", "https://creativecommons.org/licenses/by-sa/4.0/"},
	{"CC0-1.0", "https://creativecommons.org/publicdomain/zero/1.0/"},
	{"CC-BY-NC-4.0", "https://creativecommons.org/licenses/by-nc/4.0/"},
	{"Public-Domain-Mark", "https://creativecommons.org/publicdomain/mark/1.0/"},
}

var pdmxGenres = []string{
	"classical", "folk", "pop", "jazz", "rock", "soundtrack", "religious",
	"traditional", "electronic", "country", "blues", "latin", "march",
}

// PDMX synthesizes the Public Domain MusicXML dataset: 10,000 score rows
// (~2,500 base songs × ~4 arrangements), 57 fields. PDMX is heavily
// duplicated — its own subset flags (subsetdeduplicated etc.) exist because
// many uploads are re-arrangements of the same song — so the long lyrics
// field repeats across a song's arrangements while metadata/path are unique
// per row. FDs (Appendix B): {metadata, path} and a boolean profile group
// {hasannotations, hasmetadata, isdraft, isofficial, isuserpublisher,
// subsetall}.
func PDMX(opt Options) *Relational {
	r := rand.New(rand.NewSource(opt.Seed ^ 0x50444d58))
	tg := newTextGen(opt.Seed ^ 0x50444d59)

	nRows := opt.scaled(10000)
	nSongs := opt.scaled(2500)
	nArtists := opt.scaled(600)

	// Arrangements of one song share the song-level fields AND the musical
	// statistics (note counts, lengths, consistency scores): PDMX's many
	// near-duplicate uploads are re-engravings of the same score, which is
	// exactly why the dataset ships subset/dedup flags. Only upload-level
	// fields (ids, paths, metadata, dates, view counts) vary per row.
	type song struct {
		name, title, subtitle, lyrics  string
		artist, composer, genre, tags  string
		publisher, license, licenseURL string
		hasLyrics, mentionsPerson      bool
		complexity, nnotes, ntracks    int
		songLen, bars, beats           int
		rating, groove, scale, npb     string
	}
	artists := make([]string, nArtists)
	for i := range artists {
		artists[i] = tg.title(2)
	}
	publishers := make([]string, 60)
	for i := range publishers {
		publishers[i] = "MuseScore User " + tg.phrase(1)
	}
	songs := make([]song, nSongs)
	for i := range songs {
		hasLyrics := r.Intn(10) < 7
		lyrics := "None"
		if hasLyrics {
			lyrics = tg.sentence(250 + r.Intn(90))
		}
		name := tg.title(2 + r.Intn(2))
		composer := "None"
		mentions := false
		if r.Intn(3) > 0 {
			composer = tg.title(2)
			mentions = true
		}
		lic := pick(r, pdmxLicenses)
		songs[i] = song{
			name: name, title: name, subtitle: tg.title(1 + r.Intn(2)),
			lyrics: lyrics, artist: pick(r, artists), composer: composer,
			genre: pick(r, pdmxGenres), tags: pick(r, pdmxGenres) + "," + pick(r, pdmxGenres),
			publisher: pick(r, publishers), license: lic.name, licenseURL: lic.url,
			hasLyrics: hasLyrics, mentionsPerson: mentions,
			complexity: 1 + r.Intn(10), nnotes: 200 + r.Intn(6000), ntracks: 1 + r.Intn(8),
			songLen: 30 + r.Intn(400), bars: 8 + r.Intn(200), beats: 32 + r.Intn(800),
			rating: fmt.Sprintf("%d.%d", r.Intn(5), r.Intn(10)),
			groove: fmt.Sprintf("0.%02d", r.Intn(100)),
			scale:  fmt.Sprintf("0.%02d", r.Intn(100)),
			npb:    fmt.Sprintf("%d.%d", 2+r.Intn(8), r.Intn(10)),
		}
	}

	// The bidirectional boolean FD group admits only bijective profiles:
	// fixing any member fixes the rest, so at most two distinct 6-tuples.
	boolProfiles := [2][6]string{
		{"True", "True", "False", "True", "False", "True"},
		{"False", "False", "True", "False", "True", "False"},
	}

	t := table.New(pdmxColumns...)
	fds := table.NewFDSet()
	fds.AddGroup("metadata", "path")
	fds.AddGroup("hasannotations", "hasmetadata", "isdraft", "isofficial", "isuserpublisher", "subsetall")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}

	labels := make([]string, nRows)
	row := make(map[string]string, len(pdmxColumns))
	for i := 0; i < nRows; i++ {
		s := songs[r.Intn(nSongs)]
		prof := boolProfiles[r.Intn(2)]
		boolStr := func(b bool) string {
			if b {
				return "True"
			}
			return "False"
		}
		pathStr := fmt.Sprintf("/data/%s/%s/%d.mxl", tg.slug(1), tg.slug(2), i)

		// Song-level fields: identical across a song's arrangements.
		row["artistname"] = s.artist
		row["composername"] = s.composer
		row["complexity"] = fmt.Sprintf("%d", s.complexity)
		row["genre"] = s.genre
		row["grooveconsistency"] = s.groove
		row["haslyrics"] = boolStr(s.hasLyrics)
		row["license"] = s.license
		row["licenseurl"] = s.licenseURL
		row["notesperbar"] = s.npb
		row["nnotes"] = fmt.Sprintf("%d", s.nnotes)
		row["ntracks"] = fmt.Sprintf("%d", s.ntracks)
		row["ntokens"] = fmt.Sprintf("%d", s.nnotes*2)
		row["publisher"] = s.publisher
		row["rating"] = s.rating
		row["scaleconsistency"] = s.scale
		row["songlength"] = fmt.Sprintf("%d", s.songLen)
		row["songlengthbars"] = fmt.Sprintf("%d", s.bars)
		row["songlengthbeats"] = fmt.Sprintf("%d", s.beats)
		row["songlengthseconds"] = fmt.Sprintf("%d", s.songLen)
		row["songname"] = s.name
		row["subtitle"] = s.subtitle
		row["tags"] = s.tags
		row["text"] = s.lyrics
		row["title"] = s.title
		row["nlyrics"] = fmt.Sprintf("%d", s.nnotes/12)

		// Upload-level fields: unique or near-unique per row.
		row["bestarrangement"] = boolStr(r.Intn(4) == 0)
		row["bestpath"] = fmt.Sprintf("/best/%s/%d.mxl", tg.slug(2), i)
		row["bestuniquearrangement"] = boolStr(r.Intn(4) == 0)
		row["hasannotations"] = prof[0]
		row["hascustomaudio"] = boolStr(r.Intn(6) == 0)
		row["hascustomvideo"] = boolStr(r.Intn(8) == 0)
		row["hasmetadata"] = prof[1]
		row["haspaywall"] = boolStr(r.Intn(12) == 0)
		row["id"] = fmt.Sprintf("%d", 500000+i)
		row["isbestarrangement"] = boolStr(r.Intn(4) == 0)
		row["isbestpath"] = boolStr(r.Intn(4) == 0)
		row["isbestuniquearrangement"] = boolStr(r.Intn(4) == 0)
		row["isdraft"] = prof[2]
		row["isofficial"] = prof[3]
		row["isoriginal"] = boolStr(r.Intn(3) == 0)
		row["isuserpro"] = boolStr(r.Intn(5) == 0)
		row["isuserpublisher"] = prof[4]
		row["isuserstaff"] = boolStr(r.Intn(20) == 0)
		row["metadata"] = fmt.Sprintf("{\"source\": \"musescore\", \"upload\": \"%s\", \"checksum\": \"%08x%08x\", \"revision\": %d}",
			tg.slug(2), r.Uint32(), r.Uint32(), r.Intn(40))
		row["nannotations"] = fmt.Sprintf("%d", r.Intn(20))
		row["ncomments"] = fmt.Sprintf("%d", r.Intn(50))
		row["nfavorites"] = fmt.Sprintf("%d", r.Intn(3000))
		row["nratings"] = fmt.Sprintf("%d", r.Intn(200))
		row["nviews"] = fmt.Sprintf("%d", r.Intn(100000))
		row["path"] = pathStr
		row["pitchclassentropy"] = fmt.Sprintf("%d.%04d", 1+r.Intn(3), r.Intn(10000))
		row["postdate"] = fmt.Sprintf("20%02d-%02d-%02d", 10+r.Intn(14), 1+r.Intn(12), 1+r.Intn(28))
		row["postid"] = fmt.Sprintf("%d", 900000+i)
		row["subsetall"] = prof[5]
		row["subsetdeduplicated"] = boolStr(r.Intn(2) == 0)
		row["subsetrated"] = boolStr(r.Intn(2) == 0)
		row["subsetrateddeduplicated"] = boolStr(r.Intn(3) == 0)

		cells := make([]string, len(pdmxColumns))
		for j, c := range pdmxColumns {
			cells[j] = row[c]
		}
		t.MustAppendRow(cells...)
		if s.mentionsPerson {
			labels[i] = "YES"
		} else {
			labels[i] = "NO"
		}
	}
	if err := t.SetHidden("label", labels); err != nil {
		panic(err)
	}
	return &Relational{Name: "PDMX", Table: t}
}
