package datagen

import (
	"strings"
	"testing"

	"repro/internal/vecdb"
)

// TestPDMXArrangementsShareSongFields pins the PDMX structure the paper's
// 57% hit rate depends on: rows of the same song (same lyrics) must agree on
// every song-level field while differing in upload-level fields.
func TestPDMXArrangementsShareSongFields(t *testing.T) {
	d := PDMX(Options{Scale: 0.05, Seed: 2})
	tbl := d.Table
	textCol, _ := tbl.ColIndex("text")
	songLevel := []string{
		"artistname", "composername", "complexity", "genre", "license",
		"nnotes", "publisher", "rating", "songname", "songlength", "title",
	}
	uploadLevel := []string{"id", "postid", "path", "metadata"}

	// Group rows by lyrics (proxy for song identity; skip the "None" pool).
	bySong := map[string][]int{}
	for i := 0; i < tbl.NumRows(); i++ {
		v := tbl.Cell(i, textCol)
		if v != "None" {
			bySong[v] = append(bySong[v], i)
		}
	}
	multi := 0
	for _, rows := range bySong {
		if len(rows) < 2 {
			continue
		}
		multi++
		for _, col := range songLevel {
			ref, _ := tbl.CellByName(rows[0], col)
			for _, r := range rows[1:] {
				v, _ := tbl.CellByName(r, col)
				if v != ref {
					t.Fatalf("song-level field %q differs across arrangements: %q vs %q", col, ref, v)
				}
			}
		}
		for _, col := range uploadLevel {
			a, _ := tbl.CellByName(rows[0], col)
			b, _ := tbl.CellByName(rows[1], col)
			if a == b {
				t.Fatalf("upload-level field %q identical across arrangements (%q)", col, a)
			}
		}
	}
	if multi < 10 {
		t.Fatalf("only %d songs with multiple arrangements; duplication structure missing", multi)
	}
}

// TestPDMXBooleanProfileFDHolds verifies the degenerate boolean FD group the
// paper declares stays bijective in generated data.
func TestPDMXBooleanProfileFDHolds(t *testing.T) {
	d := PDMX(Options{Scale: 0.02, Seed: 3})
	if err := d.Table.FDs().Validate(d.Table); err != nil {
		t.Fatal(err)
	}
	// And only two distinct profiles exist.
	cols := []string{"hasannotations", "hasmetadata", "isdraft", "isofficial", "isuserpublisher", "subsetall"}
	profiles := map[string]bool{}
	for i := 0; i < d.Table.NumRows(); i++ {
		var sb strings.Builder
		for _, c := range cols {
			v, _ := d.Table.CellByName(i, c)
			sb.WriteString(v)
			sb.WriteByte('|')
		}
		profiles[sb.String()] = true
	}
	if len(profiles) != 2 {
		t.Errorf("boolean profile count = %d, want 2 (bidirectional FD limit)", len(profiles))
	}
}

// TestRAGCanonicalRetrievalStability pins the retrieval property behind the
// paper's RAG hit rates: most questions about one topic retrieve the topic's
// passages in one canonical order.
func TestRAGCanonicalRetrievalStability(t *testing.T) {
	d := FEVER(Options{Scale: 0.05, Seed: 5})
	emb := vecdb.NewEmbedder(256)
	ix := vecdb.NewIndex(emb)
	ix.AddAll(d.Corpus)

	qIdx, _ := d.Questions.ColIndex("claim")
	topics, _ := d.Questions.Hidden("topic")
	// For each topic, count how many questions agree on the topic's most
	// common top-1 retrieved passage: that leading context is what row
	// grouping keys on, so its stability is what reordering needs. (The
	// deeper ranks are allowed to vary — that is the intended per-question
	// diversity.)
	top1 := map[string]map[int]int{}
	counts := map[string]int{}
	for i := 0; i < d.Questions.NumRows(); i++ {
		res, err := ix.Search(d.Questions.Cell(i, qIdx), d.K)
		if err != nil {
			t.Fatal(err)
		}
		tp := topics[i]
		if top1[tp] == nil {
			top1[tp] = map[int]int{}
		}
		top1[tp][res[0].ID]++
		counts[tp]++
	}
	var canonical, total int
	distinctTop := 0
	for tp, byDoc := range top1 {
		best := 0
		for _, c := range byDoc {
			if c > best {
				best = c
			}
		}
		if len(byDoc) > 1 {
			distinctTop++
		}
		canonical += best
		total += counts[tp]
	}
	frac := float64(canonical) / float64(total)
	if frac < 0.6 {
		t.Errorf("only %.0f%% of questions share their topic's canonical top context", 100*frac)
	}
	if distinctTop == 0 {
		t.Error("every topic has a single top context for all questions; intended diversity is gone")
	}
}

// TestBeerRunsShortAdjacency verifies the generation-order property behind
// Beer's unusually high original-order hit rate (runs of 1-2 reviews per
// beer, Sec. 6.2).
func TestBeerRunsShortAdjacency(t *testing.T) {
	d := Beer(Options{Scale: 0.05, Seed: 6})
	idCol, _ := d.Table.ColIndex("beer/beerId")
	same := 0
	for i := 1; i < d.Table.NumRows(); i++ {
		if d.Table.Cell(i, idCol) == d.Table.Cell(i-1, idCol) {
			same++
		}
	}
	frac := float64(same) / float64(d.Table.NumRows()-1)
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("adjacent same-beer fraction = %.2f, want the partial-grouping regime [0.15, 0.55]", frac)
	}
}

// TestMoviesEntityAdjacencyLow: review datasets must NOT arrive grouped by
// entity (that would inflate the original-order baseline beyond the paper).
func TestMoviesEntityAdjacencyLow(t *testing.T) {
	d := Movies(Options{Scale: 0.05, Seed: 6})
	col, _ := d.Table.ColIndex("movieinfo")
	same := 0
	for i := 1; i < d.Table.NumRows(); i++ {
		if d.Table.Cell(i, col) == d.Table.Cell(i-1, col) {
			same++
		}
	}
	if frac := float64(same) / float64(d.Table.NumRows()-1); frac > 0.1 {
		t.Errorf("adjacent same-movie fraction = %.2f, want < 0.1", frac)
	}
}
