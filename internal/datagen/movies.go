package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// Relational is a generated table dataset. Ground-truth labels for filter
// queries travel as the hidden column "label".
type Relational struct {
	Name  string
	Table *table.Table
}

// movieGenres mirrors the categorical vocabulary of the Rotten Tomatoes
// dump: a small set whose combinations repeat across movies.
var movieGenres = []string{
	"drama", "comedy", "action", "thriller", "romance", "horror", "sci-fi",
	"documentary", "animation", "family", "crime", "mystery", "fantasy",
	"war", "western", "musical", "biography", "history", "sport", "adventure",
}

// Movies synthesizes the Rotten Tomatoes Movie Reviews dataset: 15,000
// review rows over ~1,000 movies (Zipf popularity), 8 fields, FD group
// {movieinfo, movietitle, rottentomatoeslink} (Appendix B). The long
// movie-level fields repeat across a movie's reviews; the review content is
// per-row and short — the structure behind Table 2's 35% → 86% hit rates.
func Movies(opt Options) *Relational {
	r := rand.New(rand.NewSource(opt.Seed ^ 0x4d4f5649))
	tg := newTextGen(opt.Seed ^ 0x4d4f564a)

	nRows := opt.scaled(15000)
	nMovies := opt.scaled(1000)
	nCompanies := 60

	type movie struct {
		info, title, link, genres, company string
		kidsOK                             bool
	}
	movies := make([]movie, nMovies)
	companies := make([]string, nCompanies)
	for i := range companies {
		companies[i] = tg.title(2) + " Pictures"
	}
	for i := range movies {
		title := tg.title(2 + r.Intn(3))
		ng := 1 + r.Intn(3)
		gset := make([]string, 0, ng)
		seen := map[string]bool{}
		for len(gset) < ng {
			g := pick(r, movieGenres)
			if !seen[g] {
				seen[g] = true
				gset = append(gset, g)
			}
		}
		genres := gset[0]
		for _, g := range gset[1:] {
			genres += ", " + g
		}
		kids := seen["family"] || seen["animation"] || (seen["comedy"] && !seen["horror"] && !seen["crime"] && r.Intn(3) > 0)
		movies[i] = movie{
			info:    tg.sentence(118),
			title:   title,
			link:    "https://www.rottentomatoes.com/m/" + tg.slug(2) + fmt.Sprintf("-%d", 1960+r.Intn(65)),
			genres:  genres,
			company: pick(r, companies),
			kidsOK:  kids,
		}
	}

	// Appendix B column order (the "Original" baseline's field order).
	t := table.New(
		"genres", "movieinfo", "movietitle", "productioncompany",
		"reviewcontent", "reviewtype", "rottentomatoeslink", "topcritic",
	)
	fds := table.NewFDSet()
	fds.AddGroup("movieinfo", "movietitle", "rottentomatoeslink")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}

	labels := make([]string, nRows)
	sentiments := make([]string, nRows)
	scores := make([]string, nRows)
	for i := 0; i < nRows; i++ {
		m := movies[r.Intn(nMovies)]
		review := tg.sentence(30 + r.Intn(12))
		rtype := "Fresh"
		if r.Intn(5) < 2 {
			rtype = "Rotten"
		}
		top := "False"
		if r.Intn(4) == 0 {
			top = "True"
		}
		t.MustAppendRow(m.genres, m.info, m.title, m.company, review, rtype, m.link, top)
		if m.kidsOK {
			labels[i] = "Yes"
		} else {
			labels[i] = "No"
		}
		// Sentiment and score ground truth (for T3 multi-LLM and T4
		// aggregation) follow the review type.
		if rtype == "Fresh" {
			sentiments[i] = "POSITIVE"
			scores[i] = fmt.Sprintf("%d", 4+r.Intn(2))
		} else {
			sentiments[i] = "NEGATIVE"
			scores[i] = fmt.Sprintf("%d", 1+r.Intn(3))
		}
	}
	for name, vals := range map[string][]string{"label": labels, "sentiment": sentiments, "score": scores} {
		if err := t.SetHidden(name, vals); err != nil {
			panic(err)
		}
	}
	return &Relational{Name: "Movies", Table: t}
}
