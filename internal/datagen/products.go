package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// Products synthesizes the Amazon Product Reviews dataset: 14,890 review
// rows over ~1,100 products, 8 fields, FD {parent_asin, product_title}
// (Appendix B). The product description is the long repeated field; the
// review id is unique per row, which under the original alphabetical field
// order sits second and truncates prefix chains — the paper's motivating
// "highly distinct values in the first few default fields" pattern.
func Products(opt Options) *Relational {
	r := rand.New(rand.NewSource(opt.Seed ^ 0x50524f44))
	tg := newTextGen(opt.Seed ^ 0x50524f45)

	nRows := opt.scaled(14890)
	nProducts := opt.scaled(1100)

	type product struct {
		description, asin, title string
		quality                  int // latent quality drives labels
	}
	products := make([]product, nProducts)
	for i := range products {
		products[i] = product{
			description: tg.sentence(175),
			asin:        fmt.Sprintf("B%09d", r.Intn(1_000_000_000)),
			title:       tg.title(3 + r.Intn(4)),
			quality:     1 + r.Intn(5),
		}
	}

	t := table.New(
		"description", "id", "parent_asin", "product_title",
		"rating", "review_title", "text", "verified_purchase",
	)
	fds := table.NewFDSet()
	fds.AddGroup("parent_asin", "product_title")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}

	labels := make([]string, nRows)
	sentiments := make([]string, nRows)
	scores := make([]string, nRows)
	for i := 0; i < nRows; i++ {
		p := products[r.Intn(nProducts)]
		// Ratings cluster around the product's latent quality.
		rating := p.quality + r.Intn(3) - 1
		if rating < 1 {
			rating = 1
		}
		if rating > 5 {
			rating = 5
		}
		verified := "true"
		if r.Intn(5) == 0 {
			verified = "false"
		}
		t.MustAppendRow(
			p.description,
			fmt.Sprintf("R%010d", i*7919+r.Intn(7919)),
			p.asin,
			p.title,
			fmt.Sprintf("%d", rating),
			tg.title(3+r.Intn(4)),
			tg.sentence(48+r.Intn(16)),
			verified,
		)
		switch {
		case rating >= 4:
			labels[i] = "POSITIVE"
			sentiments[i] = "POSITIVE"
		case rating <= 2:
			labels[i] = "NEGATIVE"
			sentiments[i] = "NEGATIVE"
		default:
			labels[i] = "NEUTRAL"
			sentiments[i] = "NEGATIVE"
		}
		scores[i] = fmt.Sprintf("%d", rating)
	}
	for name, vals := range map[string][]string{"label": labels, "sentiment": sentiments, "score": scores} {
		if err := t.SetHidden(name, vals); err != nil {
			panic(err)
		}
	}
	return &Relational{Name: "Products", Table: t}
}

// BIRD synthesizes the BIRD text-to-SQL benchmark's Posts⋈Comments join
// (the paper joins Posts and Comments on PostId): 14,920 comment rows over
// ~800 posts, 4 fields, FD {Body, PostId}. Post bodies are long (~590
// tokens), so with ~800 distinct posts the working set far exceeds KV
// memory under the original order — the paper measures only 10% hits there
// versus 85% after grouping.
func BIRD(opt Options) *Relational {
	r := rand.New(rand.NewSource(opt.Seed ^ 0x42495244))
	tg := newTextGen(opt.Seed ^ 0x42495245)

	nRows := opt.scaled(14920)
	nPosts := opt.scaled(800)

	type post struct {
		body, date, id string
		stats          bool
	}
	posts := make([]post, nPosts)
	for i := range posts {
		posts[i] = post{
			body:  tg.sentence(580),
			date:  fmt.Sprintf("2012-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28)),
			id:    fmt.Sprintf("%d", 100000+i*13+r.Intn(13)),
			stats: r.Intn(2) == 0,
		}
	}

	t := table.New("Body", "PostDate", "PostId", "Text")
	fds := table.NewFDSet()
	fds.AddGroup("Body", "PostId")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}

	labels := make([]string, nRows)
	for i := 0; i < nRows; i++ {
		p := posts[r.Intn(nPosts)]
		t.MustAppendRow(p.body, p.date, p.id, tg.sentence(100+r.Intn(30)))
		if p.stats {
			labels[i] = "YES"
		} else {
			labels[i] = "NO"
		}
	}
	if err := t.SetHidden("label", labels); err != nil {
		panic(err)
	}
	return &Relational{Name: "BIRD", Table: t}
}
