package datagen

import (
	"testing"

	"repro/internal/table"
	"repro/internal/tokenizer"
)

var small = Options{Scale: 0.02, Seed: 1}

func TestRelationalShapes(t *testing.T) {
	cases := []struct {
		name   string
		fields int
	}{
		{"Movies", 8}, {"Products", 8}, {"BIRD", 4}, {"PDMX", 57}, {"Beer", 8},
	}
	for _, c := range cases {
		d, err := RelationalByName(c.name, small)
		if err != nil {
			t.Fatal(err)
		}
		if d.Table.NumCols() != c.fields {
			t.Errorf("%s: %d fields, want %d", c.name, d.Table.NumCols(), c.fields)
		}
		if d.Table.NumRows() < 50 {
			t.Errorf("%s: only %d rows at scale %.2f", c.name, d.Table.NumRows(), small.Scale)
		}
		if _, ok := d.Table.Hidden("label"); !ok {
			t.Errorf("%s: missing label column", c.name)
		}
	}
}

func TestDeclaredFDsActuallyHold(t *testing.T) {
	for _, name := range RelationalNames {
		d, err := RelationalByName(name, small)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Table.FDs().Validate(d.Table); err != nil {
			t.Errorf("%s: declared FD violated: %v", name, err)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range RelationalNames {
		a, _ := RelationalByName(name, small)
		b, _ := RelationalByName(name, small)
		if a.Table.NumRows() != b.Table.NumRows() {
			t.Fatalf("%s: row counts differ", name)
		}
		for i := 0; i < a.Table.NumRows(); i += 37 {
			for j := 0; j < a.Table.NumCols(); j++ {
				if a.Table.Cell(i, j) != b.Table.Cell(i, j) {
					t.Fatalf("%s: cell (%d,%d) differs across runs", name, i, j)
				}
			}
		}
	}
}

func TestSeedsProduceDifferentData(t *testing.T) {
	a := Movies(Options{Scale: 0.02, Seed: 1})
	b := Movies(Options{Scale: 0.02, Seed: 2})
	same := 0
	for i := 0; i < a.Table.NumRows() && i < b.Table.NumRows(); i++ {
		if a.Table.Cell(i, 1) == b.Table.Cell(i, 1) {
			same++
		}
	}
	if same == a.Table.NumRows() {
		t.Error("different seeds produced identical movieinfo columns")
	}
}

func TestEntityRepetitionStructure(t *testing.T) {
	// The datasets must have far fewer entities than rows: that repetition
	// is the raw material for prefix caching.
	type probe struct{ name, col string }
	for _, p := range []probe{
		{"Movies", "movieinfo"}, {"Products", "description"},
		{"BIRD", "Body"}, {"Beer", "beer/beerId"}, {"PDMX", "text"},
	} {
		d, err := RelationalByName(p.name, small)
		if err != nil {
			t.Fatal(err)
		}
		ci, ok := d.Table.ColIndex(p.col)
		if !ok {
			t.Fatalf("%s: missing column %s", p.name, p.col)
		}
		distinct := map[string]bool{}
		for i := 0; i < d.Table.NumRows(); i++ {
			distinct[d.Table.Cell(i, ci)] = true
		}
		ratio := float64(len(distinct)) / float64(d.Table.NumRows())
		if ratio > 0.6 {
			t.Errorf("%s.%s: %d distinct over %d rows (%.2f) — not enough repetition",
				p.name, p.col, len(distinct), d.Table.NumRows(), ratio)
		}
	}
}

func TestTokenBudgetsRoughlyMatchTable1(t *testing.T) {
	// Data-token averages per row (prompt scaffolding excluded) should be in
	// the right regime for each dataset: these drive the input_avg column of
	// Table 1. Wide tolerances — we check regime, not point values.
	bounds := map[string][2]float64{
		"Movies":   {120, 320},
		"Products": {200, 420},
		"BIRD":     {550, 900},
		"PDMX":     {350, 800},
		"Beer":     {40, 180},
	}
	for name, b := range bounds {
		d, err := RelationalByName(name, small)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		rows := d.Table.NumRows()
		for i := 0; i < rows; i++ {
			for j := 0; j < d.Table.NumCols(); j++ {
				total += int64(tokenizer.Count(d.Table.Cell(i, j)))
			}
		}
		avg := float64(total) / float64(rows)
		if avg < b[0] || avg > b[1] {
			t.Errorf("%s: avg data tokens/row = %.0f, want within [%v, %v]", name, avg, b[0], b[1])
		}
	}
}

func TestLabelsAreValid(t *testing.T) {
	valid := map[string]map[string]bool{
		"Movies":   {"Yes": true, "No": true},
		"Products": {"POSITIVE": true, "NEGATIVE": true, "NEUTRAL": true},
		"BIRD":     {"YES": true, "NO": true},
		"PDMX":     {"YES": true, "NO": true},
		"Beer":     {"YES": true, "NO": true},
	}
	for name, ok := range valid {
		d, err := RelationalByName(name, small)
		if err != nil {
			t.Fatal(err)
		}
		labels, _ := d.Table.Hidden("label")
		for i, l := range labels {
			if !ok[l] {
				t.Fatalf("%s row %d: invalid label %q", name, i, l)
			}
		}
	}
}

func TestBeerLabelConsistentWithStyle(t *testing.T) {
	d := Beer(small)
	ci, _ := d.Table.ColIndex("beer/style")
	labels, _ := d.Table.Hidden("label")
	// Same style string must always produce the same label.
	seen := map[string]string{}
	for i := 0; i < d.Table.NumRows(); i++ {
		style := d.Table.Cell(i, ci)
		if prev, ok := seen[style]; ok && prev != labels[i] {
			t.Fatalf("style %q labelled both %s and %s", style, prev, labels[i])
		}
		seen[style] = labels[i]
	}
}

func TestRAGShapes(t *testing.T) {
	for _, name := range RAGNames {
		d, err := RAGByName(name, small)
		if err != nil {
			t.Fatal(err)
		}
		if d.Questions.NumRows() < 50 {
			t.Errorf("%s: %d questions", name, d.Questions.NumRows())
		}
		if len(d.Corpus) < 20 {
			t.Errorf("%s: corpus %d", name, len(d.Corpus))
		}
		if d.K < 4 || d.K > 5 {
			t.Errorf("%s: k = %d", name, d.K)
		}
		if _, ok := d.Questions.ColIndex(d.QuestionField); !ok {
			t.Errorf("%s: question field %q missing", name, d.QuestionField)
		}
		if _, ok := d.Questions.Hidden("label"); !ok {
			t.Errorf("%s: labels missing", name)
		}
		if _, ok := d.Questions.Hidden("topic"); !ok {
			t.Errorf("%s: topics missing", name)
		}
	}
}

func TestFEVERLabelDistribution(t *testing.T) {
	d := FEVER(small)
	labels, _ := d.Questions.Hidden("label")
	counts := map[string]int{}
	for _, l := range labels {
		counts[l]++
	}
	for _, want := range []string{"SUPPORTS", "REFUTES", "NOT ENOUGH INFO"} {
		if counts[want] == 0 {
			t.Errorf("label %q never generated", want)
		}
	}
	if len(counts) != 3 {
		t.Errorf("unexpected labels: %v", counts)
	}
}

func TestRAGTopicSharing(t *testing.T) {
	// Multiple questions must target the same topic — without that, RAG
	// context reuse (the experiment's premise) cannot exist.
	d := FEVER(small)
	topics, _ := d.Questions.Hidden("topic")
	counts := map[string]int{}
	for _, tp := range topics {
		counts[tp]++
	}
	multi := 0
	for _, c := range counts {
		if c >= 2 {
			multi++
		}
	}
	if multi < len(counts)/4 {
		t.Errorf("only %d/%d topics have ≥2 questions", multi, len(counts))
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := RelationalByName("nope", small); err == nil {
		t.Error("unknown relational name accepted")
	}
	if _, err := RAGByName("nope", small); err == nil {
		t.Error("unknown RAG name accepted")
	}
	if len(AllNames()) != 7 {
		t.Errorf("AllNames = %v", AllNames())
	}
}

func TestScaleControlsRows(t *testing.T) {
	a := Movies(Options{Scale: 0.01, Seed: 1})
	b := Movies(Options{Scale: 0.05, Seed: 1})
	if b.Table.NumRows() <= a.Table.NumRows() {
		t.Errorf("scale not monotone: %d vs %d", a.Table.NumRows(), b.Table.NumRows())
	}
	full := Options{Seed: 1} // default scale = 1
	if got := full.scaled(15000); got != 15000 {
		t.Errorf("default scale: %d", got)
	}
}

func TestStatsFavorEntityColumns(t *testing.T) {
	// Sanity for the solver: on Movies, the stats score of movieinfo (long,
	// repeated) must dominate reviewcontent (long, unique).
	d := Movies(small)
	s := table.ComputeStats(d.Table, func(v string) int { return tokenizer.Count(v) })
	if s.Score("movieinfo") <= s.Score("reviewcontent") {
		t.Errorf("movieinfo score %.1f not above reviewcontent %.1f",
			s.Score("movieinfo"), s.Score("reviewcontent"))
	}
}
