package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/table"
)

// RAG is a retrieval dataset: a question/claim table plus the passage corpus
// questions retrieve from. The corpus is topic-structured so that questions
// about the same topic retrieve overlapping context sets — the sharing the
// paper exploits when reordering RAG request tables (Sec. 6.2, RAG).
type RAG struct {
	Name string
	// Questions has a single visible column (QuestionField) plus the hidden
	// "label" column with ground truth and the hidden "topic" column used by
	// tests to check retrieval quality.
	Questions *table.Table
	// QuestionField is the visible column name ("claim" or "question").
	QuestionField string
	// Corpus holds the retrievable passages.
	Corpus []string
	// K is the number of contexts the paper retrieves for this dataset.
	K int
	// ContextTokens is the approximate passage length in tokens.
	ContextTokens int
}

// ragSpec captures the per-dataset knobs.
type ragSpec struct {
	name, questionField    string
	rows, topics, perTopic int
	k, ctxTokens, qTokens  int
	labels                 []string
	labelWeights           []int
}

// FEVER synthesizes the Fact Extraction and VERification dataset: 19,929
// claims over ~600 topics, 4 evidence passages of ~300 tokens each
// (Table 1: 1302 average input tokens, 3 output tokens).
func FEVER(opt Options) *RAG {
	return buildRAG(opt, ragSpec{
		name: "FEVER", questionField: "claim",
		rows: 19929, topics: 600, perTopic: 8,
		k: 4, ctxTokens: 290, qTokens: 12,
		labels:       []string{"SUPPORTS", "REFUTES", "NOT ENOUGH INFO"},
		labelWeights: []int{5, 3, 2},
	}, 0x46455645)
}

// SQuAD synthesizes the Stanford Question Answering Dataset: 22,665
// questions over ~450 articles, 5 contexts of ~185 tokens each (Table 1:
// 1047 average input tokens, 11 output tokens). Answers are open-ended, so
// the label column holds a short answer phrase; the paper excludes SQuAD
// from exact-match accuracy for the same reason.
func SQuAD(opt Options) *RAG {
	return buildRAG(opt, ragSpec{
		name: "SQuAD", questionField: "question",
		rows: 22665, topics: 450, perTopic: 8,
		k: 5, ctxTokens: 185, qTokens: 13,
		labels: nil, // open-ended: label is a generated phrase
	}, 0x53515541)
}

func buildRAG(opt Options, spec ragSpec, seedSalt int64) *RAG {
	r := rand.New(rand.NewSource(opt.Seed ^ seedSalt))
	tg := newTextGen(opt.Seed ^ (seedSalt + 1))

	nRows := opt.scaled(spec.rows)
	nTopics := opt.scaled(spec.topics)

	// Each topic gets distinctive keywords that appear both in its passages
	// and in its questions; the feature-hash embedder then ranks the topic's
	// passages first for its questions.
	type topic struct {
		keywords []string
		passages []int // corpus indices
	}
	topics := make([]topic, nTopics)
	var corpus []string
	for ti := range topics {
		kw := []string{
			fmt.Sprintf("%s%03d", tg.phrase(1), ti),
			fmt.Sprintf("%s%03dx", tg.phrase(1), ti),
			fmt.Sprintf("%s%03dq", tg.phrase(1), ti),
		}
		topics[ti].keywords = kw
		for p := 0; p < spec.perTopic; p++ {
			// Interleave topic keywords densely through the passage body so
			// the bag-of-words embedding carries a strong topic signal over
			// the Zipf-common filler vocabulary (as entity names do in real
			// encyclopedic text). Keyword density decreases with the passage
			// index, giving the topic a stable intra-topic ranking that
			// question filler noise cannot flip — questions about a topic
			// retrieve its passages in a consistent order, the property that
			// makes RAG reordering profitable (Sec. 6.2).
			stride := 6 + 2*p
			words := strings.Fields(tg.sentence(spec.ctxTokens * 3 / 4))
			var sb strings.Builder
			for wi, w := range words {
				if wi > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(w)
				if wi%stride == stride-1 {
					sb.WriteByte(' ')
					sb.WriteString(kw[(wi/stride+p)%3])
				}
			}
			topics[ti].passages = append(topics[ti].passages, len(corpus))
			corpus = append(corpus, sb.String())
		}
	}

	qt := table.New(spec.questionField)
	labels := make([]string, nRows)
	topicIDs := make([]string, nRows)
	zipf := newZipf(r, 1.03, nTopics)
	var labelPick func() string
	if spec.labels != nil {
		total := 0
		for _, w := range spec.labelWeights {
			total += w
		}
		labelPick = func() string {
			x := r.Intn(total)
			for i, w := range spec.labelWeights {
				if x < w {
					return spec.labels[i]
				}
				x -= w
			}
			return spec.labels[len(spec.labels)-1]
		}
	} else {
		labelPick = func() string { return tg.phrase(1 + r.Intn(2)) }
	}
	for i := 0; i < nRows; i++ {
		ti := int(zipf.Uint64())
		tp := topics[ti]
		// Keyword-heavy questions (entity mentions dominate real claims and
		// questions too). Most questions about a topic mention its keywords
		// in the canonical balance, so they retrieve the topic's passages in
		// the same order — the sharing the paper measures; a minority
		// over-emphasize one keyword and perturb their retrieval order.
		kws := []string{tp.keywords[0], tp.keywords[1], tp.keywords[2], tp.keywords[0]}
		if r.Intn(4) == 0 {
			kws[3] = tp.keywords[r.Intn(3)]
		}
		// Filler words are drawn uniformly from the rare half of the
		// vocabulary so they rarely collide with passage bodies (which use
		// the Zipf-common head): retrieval ranking is decided by keyword
		// overlap, as with a real dense encoder.
		q := strings.Join([]string{
			tg.title(1), kws[0], kws[1], tg.rarePhrase(2), kws[2], kws[3],
			tg.rarePhrase(spec.qTokens / 4),
		}, " ") + "?"
		qt.MustAppendRow(q)
		labels[i] = labelPick()
		topicIDs[i] = fmt.Sprintf("%d", ti)
	}
	if err := qt.SetHidden("label", labels); err != nil {
		panic(err)
	}
	if err := qt.SetHidden("topic", topicIDs); err != nil {
		panic(err)
	}
	return &RAG{
		Name:          spec.name,
		Questions:     qt,
		QuestionField: spec.questionField,
		Corpus:        corpus,
		K:             spec.k,
		ContextTokens: spec.ctxTokens,
	}
}
