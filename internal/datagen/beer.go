package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// beerStyles pairs a style descriptor with whether it denotes a European
// origin — the ground truth for the paper's Beer filter query ("does this
// beer have European origin?").
var beerStyles = []struct {
	name     string
	european bool
}{
	{"Bohemian Pilsener brewed in the traditional Czech manner with floor-malted barley and noble Saaz hops", true},
	{"Belgian Tripel fermented with abbey yeast, candi sugar and a long warm secondary conditioning", true},
	{"Bavarian Hefeweizen with banana and clove esters from open fermentation in copper vessels", true},
	{"English Bitter served cask-conditioned with earthy Fuggle hops and a biscuit malt backbone", true},
	{"Irish Dry Stout with roasted barley, nitrogen pour and a famously creamy tan head", true},
	{"German Doppelbock lagered cold for months, rich with melanoidin and dark stone fruit", true},
	{"Belgian Lambic spontaneously fermented in open coolships and aged in oak foeders", true},
	{"Vienna Lager with an amber malt profile, bready sweetness and a clean dry finish", true},
	{"American Double IPA heavily dry-hopped with Citra and Mosaic for dense tropical aroma", false},
	{"American Pale Ale showcasing Cascade hops over a light caramel malt platform", false},
	{"Imperial Russian Stout brewed stateside with espresso, cacao nibs and bourbon barrel aging", false},
	{"West Coast Pilsner, a hybrid crisp lager punched up with modern American hop varieties", false},
	{"New England Hazy IPA with oats and lactose, double dry-hopped and intentionally turbid", false},
	{"Kentucky Common, a pre-prohibition American style with corn grits and dark malt", false},
	{"American Amber Lager, a clean crowd-pleasing balance of toast and light citrus hop", false},
	{"California Steam Beer fermented warm with lager yeast for a rustic fruity snap", false},
}

// Beer synthesizes the RateBeer reviews dataset: 28,479 review rows over
// ~1,400 beers, 8 fields, FD {beer/beerId, beer/name}. Reviews arrive
// loosely grouped by beer (scrapes walk beer pages), which is why the paper
// measures an unusually high 50% hit rate even before reordering.
func Beer(opt Options) *Relational {
	r := rand.New(rand.NewSource(opt.Seed ^ 0x42454552))
	tg := newTextGen(opt.Seed ^ 0x42454553)

	nRows := opt.scaled(28479)
	nBeers := opt.scaled(1400)
	nUsers := opt.scaled(2200)

	type beer struct {
		id, name, style string
		european        bool
	}
	beers := make([]beer, nBeers)
	for i := range beers {
		st := pick(r, beerStyles)
		beers[i] = beer{
			id:       fmt.Sprintf("%d", 10000+i),
			name:     tg.title(2) + " Brewing " + tg.title(1+r.Intn(2)),
			style:    st.name,
			european: st.european,
		}
	}
	users := make([]string, nUsers)
	for i := range users {
		users[i] = tg.phrase(1) + fmt.Sprintf("%d", r.Intn(999))
	}

	t := table.New(
		"beer/beerId", "beer/name", "beer/style", "review/appearance",
		"review/overall", "review/palate", "review/profileName", "review/taste",
	)
	fds := table.NewFDSet()
	fds.AddGroup("beer/beerId", "beer/name")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}

	// Reviews are generated in runs per beer (scrape order), with runs of
	// popular beers interleaved — partial adjacency, not a clean sort.
	userZipf := newZipf(r, 1.2, nUsers)
	labels := make([]string, 0, nRows)
	for len(labels) < nRows {
		b := beers[r.Intn(nBeers)]
		run := 1 + r.Intn(2)
		for j := 0; j < run && len(labels) < nRows; j++ {
			t.MustAppendRow(
				b.id, b.name, b.style,
				fmtRating(r, 5), fmtRating(r, 20), fmtRating(r, 5),
				users[userZipf.Uint64()], fmtRating(r, 10),
			)
			if b.european {
				labels = append(labels, "YES")
			} else {
				labels = append(labels, "NO")
			}
		}
	}
	if err := t.SetHidden("label", labels); err != nil {
		panic(err)
	}
	return &Relational{Name: "Beer", Table: t}
}
