// Package kvcache implements a paged, prefix-sharing KV cache in the style
// of vLLM's automatic prefix caching / SGLang's RadixAttention: token
// sequences are split into fixed-size blocks, identical block chains are
// stored once (a trie over block hashes), and blocks are reference-counted
// so concurrently running requests share prefix memory. Unreferenced blocks
// are evicted in LRU order, leaves first.
//
// The cache accounts two benefits of prefix reuse, both of which the paper's
// end-to-end numbers depend on: matched tokens skip prefill computation, and
// shared blocks free KV memory, allowing larger batches.
package kvcache

import (
	"container/heap"
	"fmt"

	"repro/internal/tokenizer"
)

// Config sizes the cache.
type Config struct {
	// BlockSize is the number of tokens per KV block (vLLM's default is 16).
	BlockSize int
	// CapacityBlocks bounds the total blocks (shared + private). Zero or
	// negative means unlimited.
	CapacityBlocks int64
	// Disabled turns prefix sharing off: every request gets private blocks
	// only. This is the No Cache baseline; capacity accounting still applies.
	Disabled bool
}

// Stats aggregates cache behaviour over a run.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type Stats struct {
	// MatchedTokens is the total number of prompt tokens served from cache.
	MatchedTokens int64
	// PromptTokens is the total number of prompt tokens offered.
	PromptTokens int64
	// InsertedBlocks counts trie blocks created; EvictedBlocks counts blocks
	// reclaimed by LRU eviction.
	InsertedBlocks int64
	EvictedBlocks  int64
	// Rejections counts Acquire calls that failed for lack of memory.
	Rejections int64
}

// HitRate is MatchedTokens / PromptTokens.
func (s Stats) HitRate() float64 {
	if s.PromptTokens == 0 {
		return 0
	}
	return float64(s.MatchedTokens) / float64(s.PromptTokens)
}

// Lease is a request's hold on cache memory: a pinned shared prefix path
// plus private (unshared) blocks for the prompt tail, and reserved space for
// generated tokens.
type Lease struct {
	// Matched is the number of prompt tokens found in cache at Acquire time.
	Matched int
	// Prompt is the prompt length in tokens.
	Prompt int

	path       []*node
	privBlocks int64
	released   bool
}

// PrivateBlocks reports the lease's unshared block count.
func (l *Lease) PrivateBlocks() int64 { return l.privBlocks }

// SharedBlocks reports the number of trie blocks the lease pins.
func (l *Lease) SharedBlocks() int64 { return int64(len(l.path)) }

type node struct {
	hash     uint64
	parent   *node
	children map[uint64]*node
	refs     int32
	lastUse  int64
	dead     bool
}

// Cache is a single device pool. It is not safe for concurrent use; the
// serving engine is single-threaded over a virtual clock. Concurrent
// executors (internal/runtime) respect this by confinement: every engine
// run builds its own Cache and no Cache ever crosses a goroutine boundary.
type Cache struct {
	cfg   Config
	root  *node
	used  int64 // total blocks in use (trie + private)
	trie  int64 // blocks held by the trie
	clock int64
	stats Stats
	evict evictHeap
}

// New returns an empty cache. BlockSize defaults to 16.
func New(cfg Config) *Cache {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 16
	}
	return &Cache{
		cfg:  cfg,
		root: &node{children: make(map[uint64]*node)},
	}
}

// BlockSize returns the configured tokens-per-block.
func (c *Cache) BlockSize() int { return c.cfg.BlockSize }

// UsedBlocks returns total blocks currently allocated.
func (c *Cache) UsedBlocks() int64 { return c.used }

// TrieBlocks returns blocks held by the shared trie (cached prefixes).
func (c *Cache) TrieBlocks() int64 { return c.trie }

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// MatchLen reports how many tokens of the sequence are currently cached,
// without pinning or inserting. Used by schedulers to estimate cost.
func (c *Cache) MatchLen(tokens []tokenizer.Token) int {
	if c.cfg.Disabled {
		return 0
	}
	n := 0
	cur := c.root
	for _, h := range blockHashes(tokens, c.cfg.BlockSize) {
		next, ok := cur.children[h]
		if !ok {
			break
		}
		cur = next
		n += c.cfg.BlockSize
	}
	return n
}

// Acquire admits a prompt: it matches the longest cached block prefix, pins
// it, inserts the remaining full blocks, and reserves private space for the
// prompt tail plus reserveTokens of future generation. It reports false if
// the pool cannot hold the request even after evicting every unpinned block;
// the caller should retry after other requests release memory.
func (c *Cache) Acquire(tokens []tokenizer.Token, reserveTokens int) (*Lease, bool) {
	c.clock++
	bs := int64(c.cfg.BlockSize)
	prompt := len(tokens)

	if c.cfg.Disabled {
		need := ceilDiv(int64(prompt)+int64(reserveTokens), bs)
		if !c.ensure(need) {
			c.stats.Rejections++
			return nil, false
		}
		c.used += need
		c.stats.PromptTokens += int64(prompt)
		return &Lease{Prompt: prompt, privBlocks: need}, true
	}

	hashes := blockHashes(tokens, c.cfg.BlockSize)

	// Walk the existing prefix, pinning it immediately: the eviction pass
	// below must never reclaim blocks this request is about to reuse.
	var path []*node
	cur := c.root
	matchedBlocks := 0
	for _, h := range hashes {
		next, ok := cur.children[h]
		if !ok {
			break
		}
		cur = next
		next.refs++
		next.lastUse = c.clock
		path = append(path, next)
		matchedBlocks++
	}

	newShared := int64(len(hashes) - matchedBlocks)
	tailTokens := int64(prompt) - int64(len(hashes))*bs
	priv := ceilDiv(tailTokens+int64(reserveTokens), bs)
	if !c.ensure(newShared + priv) {
		// Undo the pins taken during the walk.
		for i := len(path) - 1; i >= 0; i-- {
			n := path[i]
			n.refs--
			if n.refs == 0 && len(n.children) == 0 {
				c.pushEvictable(n)
			}
		}
		c.stats.Rejections++
		return nil, false
	}

	for _, h := range hashes[matchedBlocks:] {
		next := &node{hash: h, parent: cur, children: make(map[uint64]*node), refs: 1, lastUse: c.clock}
		cur.children[h] = next
		cur = next
		path = append(path, next)
	}
	c.trie += newShared
	c.used += newShared + priv
	c.stats.InsertedBlocks += newShared

	matched := matchedBlocks * c.cfg.BlockSize
	if matched > prompt {
		matched = prompt
	}
	c.stats.MatchedTokens += int64(matched)
	c.stats.PromptTokens += int64(prompt)
	return &Lease{Matched: matched, Prompt: prompt, path: path, privBlocks: priv}, true
}

// Release ends a lease: private blocks are freed immediately and the pinned
// trie path is unpinned, leaving the prefix cached for future reuse (it
// becomes evictable once no other lease pins it).
func (c *Cache) Release(l *Lease) {
	if l == nil || l.released {
		return
	}
	l.released = true
	c.clock++
	c.used -= l.privBlocks
	for i := len(l.path) - 1; i >= 0; i-- {
		n := l.path[i]
		n.refs--
		n.lastUse = c.clock
		if n.refs == 0 && len(n.children) == 0 {
			c.pushEvictable(n)
		}
	}
}

// ensure makes room for need blocks, evicting unpinned LRU leaves if
// required. It reports false when capacity cannot be reached.
func (c *Cache) ensure(need int64) bool {
	if c.cfg.CapacityBlocks <= 0 {
		return true
	}
	if need > c.cfg.CapacityBlocks {
		return false
	}
	for c.used+need > c.cfg.CapacityBlocks {
		if !c.evictOne() {
			return false
		}
	}
	return true
}

// evictOne removes the least-recently-used unreferenced leaf. Returns false
// when nothing is evictable.
//
// Heap entries snapshot lastUse at push time so ordering keys never mutate
// inside the heap. A popped entry whose snapshot is stale is simply dropped:
// every transition back to the evictable state (Release reaching zero refs,
// or a child eviction exposing a parent leaf) pushes a fresh entry.
func (c *Cache) evictOne() bool {
	for c.evict.Len() > 0 {
		e := heap.Pop(&c.evict).(evictEntry)
		n := e.n
		if n.dead || n.refs > 0 || len(n.children) > 0 || e.seq != n.lastUse {
			continue
		}
		n.dead = true
		delete(n.parent.children, n.hash)
		c.trie--
		c.used--
		c.stats.EvictedBlocks++
		if p := n.parent; p != c.root && p.refs == 0 && len(p.children) == 0 {
			c.pushEvictable(p)
		}
		return true
	}
	return false
}

func (c *Cache) pushEvictable(n *node) {
	heap.Push(&c.evict, evictEntry{n: n, seq: n.lastUse})
}

// Grow reserves additional private blocks mid-flight (for generation beyond
// the initial reservation). It reports false when the pool is full.
func (c *Cache) Grow(l *Lease, addBlocks int64) bool {
	if addBlocks <= 0 {
		return true
	}
	if !c.ensure(addBlocks) {
		return false
	}
	c.used += addBlocks
	l.privBlocks += addBlocks
	return true
}

// CheckInvariants verifies internal accounting; used by tests and the
// simulator's debug mode.
func (c *Cache) CheckInvariants() error {
	var walk func(n *node) (int64, error)
	walk = func(n *node) (int64, error) {
		var count int64
		for _, ch := range n.children {
			if ch.dead {
				return 0, fmt.Errorf("kvcache: dead node reachable")
			}
			if ch.parent != n {
				return 0, fmt.Errorf("kvcache: broken parent link")
			}
			sub, err := walk(ch)
			if err != nil {
				return 0, err
			}
			count += 1 + sub
		}
		return count, nil
	}
	reachable, err := walk(c.root)
	if err != nil {
		return err
	}
	if reachable != c.trie {
		return fmt.Errorf("kvcache: trie accounting %d != reachable %d", c.trie, reachable)
	}
	if c.cfg.CapacityBlocks > 0 && c.used > c.cfg.CapacityBlocks {
		return fmt.Errorf("kvcache: used %d exceeds capacity %d", c.used, c.cfg.CapacityBlocks)
	}
	if c.trie > c.used {
		return fmt.Errorf("kvcache: trie %d exceeds used %d", c.trie, c.used)
	}
	return nil
}

// blockHashes chains FNV-1a over full blocks so a block's identity covers
// its entire prefix, exactly like vLLM's hash-based prefix caching.
func blockHashes(tokens []tokenizer.Token, blockSize int) []uint64 {
	n := len(tokens) / blockSize
	out := make([]uint64, n)
	var h uint64 = 1469598103934665603 // FNV offset basis
	const prime = 1099511628211
	for b := 0; b < n; b++ {
		for _, t := range tokens[b*blockSize : (b+1)*blockSize] {
			h ^= uint64(uint32(t))
			h *= prime
		}
		out[b] = h
	}
	return out
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// evictEntry is an immutable (node, last-use snapshot) pair; see evictOne.
type evictEntry struct {
	n   *node
	seq int64
}

// evictHeap is a min-heap on the snapshotted last-use time.
type evictHeap []evictEntry

func (h evictHeap) Len() int            { return len(h) }
func (h evictHeap) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h evictHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evictHeap) Push(x interface{}) { *h = append(*h, x.(evictEntry)) }
func (h *evictHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = evictEntry{}
	*h = old[:n-1]
	return x
}
