package kvcache

import (
	"testing"
)

func BenchmarkAcquireReleaseColdHot(b *testing.B) {
	c := New(Config{BlockSize: 16, CapacityBlocks: 4096})
	prompt := seq(0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, ok := c.Acquire(prompt, 32)
		if !ok {
			b.Fatal("rejected")
		}
		c.Release(l)
	}
}

func BenchmarkAcquireDistinctWithEviction(b *testing.B) {
	c := New(Config{BlockSize: 16, CapacityBlocks: 512})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, ok := c.Acquire(seq(i*10_000, 256), 16)
		if !ok {
			b.Fatal("rejected")
		}
		c.Release(l)
	}
}

func BenchmarkMatchLen(b *testing.B) {
	c := New(Config{BlockSize: 16})
	p := seq(0, 2048)
	l, _ := c.Acquire(p, 0)
	defer c.Release(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.MatchLen(p) != 2048 {
			b.Fatal("match lost")
		}
	}
}

func BenchmarkBlockHashes(b *testing.B) {
	p := seq(0, 4096)
	b.SetBytes(int64(len(p) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blockHashes(p, 16)
	}
}
