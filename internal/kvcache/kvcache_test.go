package kvcache

import (
	"math/rand"
	"testing"

	"repro/internal/tokenizer"
)

func toks(vals ...int) []tokenizer.Token {
	out := make([]tokenizer.Token, len(vals))
	for i, v := range vals {
		out[i] = tokenizer.Token(v)
	}
	return out
}

func seq(start, n int) []tokenizer.Token {
	out := make([]tokenizer.Token, n)
	for i := range out {
		out[i] = tokenizer.Token(start + i)
	}
	return out
}

func TestAcquireMissThenHit(t *testing.T) {
	c := New(Config{BlockSize: 4})
	prompt := seq(0, 10) // 2 full blocks + 2-token tail

	l1, ok := c.Acquire(prompt, 0)
	if !ok {
		t.Fatal("first acquire rejected")
	}
	if l1.Matched != 0 {
		t.Errorf("cold acquire matched %d", l1.Matched)
	}
	if l1.SharedBlocks() != 2 || l1.PrivateBlocks() != 1 {
		t.Errorf("shared=%d private=%d, want 2/1", l1.SharedBlocks(), l1.PrivateBlocks())
	}

	l2, ok := c.Acquire(prompt, 0)
	if !ok {
		t.Fatal("second acquire rejected")
	}
	if l2.Matched != 8 {
		t.Errorf("warm acquire matched %d, want 8 (2 blocks)", l2.Matched)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Release(l1)
	c.Release(l2)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialPrefixMatch(t *testing.T) {
	c := New(Config{BlockSize: 4})
	a := append(seq(0, 8), toks(100, 101, 102, 103)...) // blocks A B C
	b := append(seq(0, 8), toks(200, 201, 202, 203)...) // blocks A B D
	l1, _ := c.Acquire(a, 0)
	l2, _ := c.Acquire(b, 0)
	if l2.Matched != 8 {
		t.Errorf("matched %d, want 8 (shared A,B)", l2.Matched)
	}
	c.Release(l1)
	c.Release(l2)
}

func TestMatchLenDoesNotMutate(t *testing.T) {
	c := New(Config{BlockSize: 4})
	p := seq(0, 8)
	if got := c.MatchLen(p); got != 0 {
		t.Errorf("cold MatchLen = %d", got)
	}
	if c.UsedBlocks() != 0 || c.TrieBlocks() != 0 {
		t.Error("MatchLen allocated blocks")
	}
	l, _ := c.Acquire(p, 0)
	c.Release(l)
	if got := c.MatchLen(p); got != 8 {
		t.Errorf("warm MatchLen = %d, want 8", got)
	}
}

func TestShortPromptNoTrie(t *testing.T) {
	c := New(Config{BlockSize: 16})
	l, ok := c.Acquire(seq(0, 10), 0) // shorter than one block
	if !ok {
		t.Fatal("rejected")
	}
	if l.SharedBlocks() != 0 || l.PrivateBlocks() != 1 {
		t.Errorf("shared=%d private=%d, want 0/1", l.SharedBlocks(), l.PrivateBlocks())
	}
	c.Release(l)
	if c.UsedBlocks() != 0 {
		t.Errorf("blocks leaked: %d", c.UsedBlocks())
	}
}

func TestDisabledMode(t *testing.T) {
	c := New(Config{BlockSize: 4, Disabled: true})
	p := seq(0, 16)
	l1, _ := c.Acquire(p, 0)
	l2, ok := c.Acquire(p, 0)
	if !ok {
		t.Fatal("rejected")
	}
	if l2.Matched != 0 {
		t.Errorf("disabled cache matched %d", l2.Matched)
	}
	// No sharing: each lease holds its own 4 blocks.
	if c.UsedBlocks() != 8 {
		t.Errorf("used = %d, want 8", c.UsedBlocks())
	}
	c.Release(l1)
	c.Release(l2)
	if c.UsedBlocks() != 0 {
		t.Errorf("leak: %d", c.UsedBlocks())
	}
	if c.Stats().HitRate() != 0 {
		t.Error("disabled cache reported hits")
	}
}

func TestSharingReducesMemory(t *testing.T) {
	shared := New(Config{BlockSize: 4})
	p := seq(0, 16)
	var leases []*Lease
	for i := 0; i < 5; i++ {
		l, ok := shared.Acquire(p, 0)
		if !ok {
			t.Fatal("rejected")
		}
		leases = append(leases, l)
	}
	// 4 trie blocks shared by all 5 leases; no tails.
	if shared.UsedBlocks() != 4 {
		t.Errorf("shared pool used %d blocks, want 4", shared.UsedBlocks())
	}
	for _, l := range leases {
		shared.Release(l)
	}
	// Prefix remains cached after release.
	if shared.TrieBlocks() != 4 {
		t.Errorf("trie dropped to %d after release", shared.TrieBlocks())
	}
}

func TestReservationBlocks(t *testing.T) {
	c := New(Config{BlockSize: 4})
	l, _ := c.Acquire(seq(0, 8), 10) // reserve 10 tokens -> 3 private blocks
	if l.PrivateBlocks() != 3 {
		t.Errorf("private = %d, want 3", l.PrivateBlocks())
	}
	c.Release(l)
}

func TestCapacityRejection(t *testing.T) {
	c := New(Config{BlockSize: 4, CapacityBlocks: 2})
	if _, ok := c.Acquire(seq(0, 16), 0); ok {
		t.Error("over-capacity acquire accepted")
	}
	if c.Stats().Rejections != 1 {
		t.Errorf("rejections = %d", c.Stats().Rejections)
	}
	// A fitting request still works.
	l, ok := c.Acquire(seq(0, 8), 0)
	if !ok {
		t.Fatal("fitting acquire rejected")
	}
	c.Release(l)
}

func TestEvictionLRU(t *testing.T) {
	c := New(Config{BlockSize: 4, CapacityBlocks: 4})
	a := seq(0, 8)   // 2 blocks
	b := seq(100, 8) // 2 blocks
	d := seq(200, 8) // 2 blocks

	la, _ := c.Acquire(a, 0)
	c.Release(la)
	lb, _ := c.Acquire(b, 0)
	c.Release(lb)
	// Touch a to make b the LRU.
	la2, _ := c.Acquire(a, 0)
	c.Release(la2)

	ld, ok := c.Acquire(d, 0)
	if !ok {
		t.Fatal("acquire with eviction failed")
	}
	c.Release(ld)
	if got := c.MatchLen(b); got != 0 {
		t.Errorf("LRU sequence b still cached (%d tokens)", got)
	}
	if got := c.MatchLen(a); got == 0 {
		t.Error("recently used sequence a was evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedBlocksSurviveEviction(t *testing.T) {
	c := New(Config{BlockSize: 4, CapacityBlocks: 4})
	a := seq(0, 8)
	la, ok := c.Acquire(a, 0) // pinned, not released
	if !ok {
		t.Fatal("acquire a")
	}
	// This needs 2 blocks; only eviction candidates are a's pinned blocks.
	if _, ok := c.Acquire(seq(100, 12), 0); ok {
		t.Error("acquire succeeded by evicting pinned blocks")
	}
	c.Release(la)
	// Now eviction can proceed.
	lb, ok := c.Acquire(seq(100, 12), 0)
	if !ok {
		t.Fatal("acquire after release failed")
	}
	c.Release(lb)
}

func TestGrow(t *testing.T) {
	c := New(Config{BlockSize: 4, CapacityBlocks: 4})
	l, _ := c.Acquire(seq(0, 8), 0)
	if !c.Grow(l, 2) {
		t.Fatal("grow rejected")
	}
	if l.PrivateBlocks() != 2 {
		t.Errorf("private = %d", l.PrivateBlocks())
	}
	if c.Grow(l, 10) {
		t.Error("over-capacity grow accepted")
	}
	if !c.Grow(l, 0) {
		t.Error("zero grow rejected")
	}
	c.Release(l)
	if c.UsedBlocks() != 2 { // trie remains
		t.Errorf("used = %d, want 2", c.UsedBlocks())
	}
}

func TestDoubleReleaseIsSafe(t *testing.T) {
	c := New(Config{BlockSize: 4})
	l, _ := c.Acquire(seq(0, 8), 0)
	c.Release(l)
	c.Release(l)
	c.Release(nil)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateAccounting(t *testing.T) {
	c := New(Config{BlockSize: 4})
	p := seq(0, 8)
	l1, _ := c.Acquire(p, 0)
	c.Release(l1)
	l2, _ := c.Acquire(p, 0)
	c.Release(l2)
	st := c.Stats()
	if st.PromptTokens != 16 || st.MatchedTokens != 8 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestRandomizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	c := New(Config{BlockSize: 4, CapacityBlocks: 64})
	var live []*Lease
	for step := 0; step < 3000; step++ {
		switch {
		case len(live) > 0 && r.Intn(3) == 0:
			i := r.Intn(len(live))
			c.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		case len(live) > 0 && r.Intn(4) == 0:
			c.Grow(live[r.Intn(len(live))], int64(r.Intn(3)))
		default:
			// Draw from a small id space so prefixes collide frequently.
			base := r.Intn(8) * 1000
			n := 1 + r.Intn(40)
			if l, ok := c.Acquire(seq(base, n), r.Intn(8)); ok {
				live = append(live, l)
			}
		}
		if step%97 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, l := range live {
		c.Release(l)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.MatchedTokens > st.PromptTokens {
		t.Errorf("matched %d > prompt %d", st.MatchedTokens, st.PromptTokens)
	}
}

func TestBlockHashChaining(t *testing.T) {
	// Same block content at different positions must hash differently
	// (identity covers the whole prefix).
	a := blockHashes(toks(1, 2, 3, 4, 1, 2, 3, 4), 4)
	if a[0] == a[1] {
		t.Error("positional chaining broken: repeated block collides")
	}
	b := blockHashes(toks(9, 9, 9, 9, 1, 2, 3, 4), 4)
	if a[1] == b[1] {
		t.Error("second block hash ignores prefix")
	}
}
